package a

import (
	"sort"

	"obs"
)

func sumValues(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `maporder: float accumulation into "sum" inside map iteration`
	}
	return sum
}

func sortedSum(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // the sort-keys idiom is allowed
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys { // ranging over a slice is ordered
		sum += m[k]
	}
	return sum
}

func collectValues(m map[string]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v) // want `maporder: append to "out" inside map iteration records map order`
	}
	return out
}

func localAccumulation(m map[string]float64) int {
	n := 0
	for _, v := range m {
		scaled := 0.0
		scaled += v // accumulator declared inside the loop: order-independent
		if scaled > 1 {
			n++
		}
	}
	return n
}

func intCount(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v // integer addition is associative; order cannot matter
	}
	return total
}

func emitPerKey(sc *obs.Scope, m map[string]float64) {
	for k := range m {
		sc.Counter(k) // want `maporder: telemetry emission inside map iteration`
	}
}

// Building a parallel worklist straight from map iteration hands the workers
// (and any downstream order-sensitive reduction) a randomized order.
func fanOutWorklist(m map[string]float64) []float64 {
	var work []float64
	for _, v := range m {
		work = append(work, v) // want `maporder: append to "work" inside map iteration records map order`
	}
	return work
}

// Collecting only the keys — even under a filter — is the sort-keys idiom:
// the worklist is sorted before the fan-out, so the distribution is fixed.
func shardedWorklist(m map[string]int) []string {
	var work []string
	for k, v := range m {
		if v > 0 {
			work = append(work, k)
		}
	}
	sort.Strings(work)
	return work
}

// The analyzer sees through worker closures: telemetry from goroutines
// launched per map entry still records the iteration order.
func emitAsync(sc *obs.Scope, m map[string]float64) {
	done := make(chan struct{}, len(m))
	for k := range m {
		go func(k string) {
			sc.Counter(k) // want `maporder: telemetry emission inside map iteration`
			done <- struct{}{}
		}(k)
	}
	for range m {
		<-done
	}
}
