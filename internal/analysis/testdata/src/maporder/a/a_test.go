package a

// Unlike the float checks, maporder also covers _test.go files:
// order-dependent tests are exactly what `go test -shuffle=on` catches.

func shuffleSensitive(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `maporder: float accumulation into "total" inside map iteration`
	}
	return total
}
