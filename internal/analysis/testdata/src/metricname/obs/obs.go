package obs

// Registry and Scope model the telemetry surface: the analyzer matches the
// recording methods by receiver type and method name.
type Registry struct{ names []string }

func (r *Registry) Add(name string, delta int64)           { r.names = append(r.names, name) }
func (r *Registry) Counter(name string) int64              { return 0 }
func (r *Registry) SetCounter(name string, v int64)        {}
func (r *Registry) SetGauge(name string, v float64)        {}
func (r *Registry) Observe(name string, v float64)         {}
func (r *Registry) RecordLatency(name string, sec float64) {}

type Scope struct{ reg *Registry }

func (s *Scope) Count(name string, delta int64)         {}
func (s *Scope) SetGauge(name string, v float64)        {}
func (s *Scope) Observe(name string, v float64)         {}
func (s *Scope) RecordLatency(name string, sec float64) {}
func (s *Scope) CounterValue(name string) int64         { return 0 }
