package a

import "obs"

// wellNamed uses the accepted shape: lowercase segments joined by dots and
// underscores.
func wellNamed(r *obs.Registry, s *obs.Scope) {
	r.Add("solver.iterations", 1)
	r.SetGauge("attr.competitive_ratio", 1.02)
	r.Observe("span.core.slot.seconds", 0.5)
	s.RecordLatency("latency.core.slot.seconds", 0.5)
	s.Count("ladder.rung_failures", 1)
}

// badCasing trips the charset rule in its several ways.
func badCasing(r *obs.Registry) {
	r.Add("Solver.Iterations", 1)  // want `metricname: metric name "Solver.Iterations" is not lowercase dotted snake_case`
	r.SetGauge("attr-cum-cost", 1) // want `metricname: metric name "attr-cum-cost" is not lowercase dotted snake_case`
	r.Observe("span..seconds", 1)  // want `metricname: metric name "span..seconds" is not lowercase dotted snake_case`
	r.RecordLatency("9lives", 1)   // want `metricname: metric name "9lives" is not lowercase dotted snake_case`
	r.Add("solver iterations", 1)  // want `metricname: metric name "solver iterations" is not lowercase dotted snake_case`
}

// constName is folded like a literal; dynamic names are out of scope.
const constName = "feed.dropped_lines"

func foldedAndDynamic(r *obs.Registry, which string) {
	r.Add(constName, 1)
	r.Add("prefix."+which, 1) // runtime-built: not judged
}

// kindClash reuses one name across metric kinds: the first registration
// wins, every later kind is flagged.
func kindClash(r *obs.Registry, s *obs.Scope) {
	r.Add("journal.commits", 1)
	r.SetGauge("journal.commits", 3)        // want `metricname: metric "journal.commits" used as a gauge here but first registered as a counter`
	s.RecordLatency("journal.commits", 0.1) // want `metricname: metric "journal.commits" used as a latency here but first registered as a counter`
	s.CounterValue("journal.commits")       // same kind as the first registration: fine
	r.Observe("solve.duration.seconds", 0.2)
	r.Observe("solve.duration.seconds", 0.3) // same kind again: fine
}
