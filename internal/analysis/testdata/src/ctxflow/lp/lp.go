package lp

import "context"

// Options mirrors the real solver options: Ctx carries cancellation and
// Workers bounds the parallel kernels.
type Options struct {
	Tol     float64
	Ctx     context.Context
	Workers int
}

// Bare has no context route at all.
type Bare struct {
	Tol float64
}

type Problem struct{}

func Solve(p *Problem) error { // want `ctxflow: exported solver entry point Solve accepts no context.Context`
	return nil
}

func SolveCtx(ctx context.Context, p *Problem) error {
	_ = ctx
	return nil
}

func SolveOpts(p *Problem, opts Options) error { // Options carries Ctx: reachable
	return nil
}

func Tune(p *Problem, opts Options) error { // entry point via the Options parameter
	return nil
}

func SolveBare(p *Problem, b Bare) error { // want `ctxflow: exported solver entry point SolveBare accepts no context.Context`
	return nil
}

func solveInner(p *Problem) error { // unexported: not an entry point
	return nil
}

func Objective(p *Problem) float64 { // no Solve name, no Options param: not an entry point
	return 0
}

type Fact struct{}

// Solve on a factorization is an inner kernel, not an entry point.
func (f *Fact) Solve(x, b []float64) {}

// A worker-count knob does not substitute for a context: a parallel entry
// point must still be cancelable.
func SolveParallel(p *Problem, workers int) error { // want `ctxflow: exported solver entry point SolveParallel accepts no context.Context`
	return nil
}

// The parallel entry point routed through Options is fine: Options.Ctx
// reaches the fan-out alongside Options.Workers.
func SolveParallelOpts(p *Problem, opts Options) error {
	return nil
}

// Minting a root context inside a worker goroutine severs cancellation just
// as thoroughly as doing it inline; the analyzer sees through the closure.
func fanOut(opts Options, n int) {
	done := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		go func() {
			ctx := context.Background() // want `ctxflow: context.Background severs the caller's cancellation`
			_ = ctx
			done <- struct{}{}
		}()
	}
	for i := 0; i < n; i++ {
		<-done
	}
}

func fresh() context.Context {
	return context.Background() // want `ctxflow: context.Background severs the caller's cancellation`
}

func todo() context.Context {
	return context.TODO() // want `ctxflow: context.TODO severs the caller's cancellation`
}
