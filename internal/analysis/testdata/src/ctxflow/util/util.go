// Package util is not a solver package: its exported Solve is exempt and it
// may mint root contexts.
package util

import "context"

func Solve() error { return nil }

func Root() context.Context { return context.Background() }
