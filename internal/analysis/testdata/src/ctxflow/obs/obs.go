// Package obs mirrors the real observability package: its long-running
// exported entry points (Serve*, Replay*, Record*) must take a context so
// the server or replay can be shut down, but unlike solver packages it may
// mint root contexts (the shutdown grace period legitimately starts from
// Background).
package obs

import "context"

type Options struct{}

func Serve(addr string, o Options) error { // want `ctxflow: exported service entry point Serve accepts no context.Context`
	return nil
}

func ServeMetrics(ctx context.Context, addr string) error {
	_ = ctx
	return nil
}

func Replay(data []byte) error { // want `ctxflow: exported service entry point Replay accepts no context.Context`
	return nil
}

func ReplayJournal(ctx context.Context, data []byte) error {
	_ = ctx
	return nil
}

func Record(name string) error { // want `ctxflow: exported service entry point Record accepts no context.Context`
	return nil
}

func RecordRun(ctx context.Context, name string) error {
	_ = ctx
	return nil
}

// Other exported names are outside the service rule: a snapshot accessor
// needs no cancellation route.
func Snapshot() map[string]float64 { return nil }

// Unexported helpers are exempt whatever their name.
func serveLoop(addr string) error { return nil }

// Methods are exempt: the rule targets package-level entry points.
type Server struct{}

func (s *Server) Serve() error { return nil }

// A service package may mint a root context — the post-cancel shutdown
// grace period has no live parent to inherit from.
func shutdownGrace() context.Context {
	ctx, cancel := context.WithTimeout(context.Background(), 2)
	_ = cancel
	return ctx
}
