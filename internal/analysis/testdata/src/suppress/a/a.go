package a

// Fixture for the suppression pipeline: valid directives above and beside
// findings, a wrong-check directive that leaves the finding alive, and every
// malformed-directive class.

func suppressedAbove(x, y float64) bool {
	//sorallint:ignore floatcmp sentinel comparison pinned by the suppression test
	return x == y
}

func suppressedInline(x, y float64) bool {
	return x == y //sorallint:ignore floatcmp sentinel comparison pinned by the suppression test
}

func wrongCheck(x, y float64) bool {
	//sorallint:ignore divguard this suppresses a different check and stays unused
	return x == y
}

func bareDirective() {
	//sorallint:ignore
}

func unknownCheck() {
	//sorallint:ignore nosuchcheck a confident reason for a check that does not exist
}

func unknownVerb() {
	//sorallint:disable floatcmp only the ignore verb exists
}

func missingReason(x, y float64) bool {
	//sorallint:ignore floatcmp
	return x == y
}
