// Package a exercises goroleak: a spawned goroutine that loops forever
// needs an exit discipline — a context/Done channel, a WaitGroup, or an
// owned channel to range over.
package a

import "context"

func spin() {
	for {
	}
}

func Leak() {
	go spin() // want `goroleak: goroutine running a.spin loops forever with no exit discipline`
}

func LeakLit() {
	go func() { // want `goroleak: goroutine running a.LeakLit.func1@\d+ loops forever with no exit discipline`
		for {
		}
	}()
}

// WithContext selects on ctx.Done: disciplined, no finding.
func WithContext(ctx context.Context, ch chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

// Drain ranges over a channel it is handed: exits when the channel closes,
// no finding.
func Drain(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

// Bounded loops finitely: no finding.
func Bounded() {
	go func() {
		for i := 0; i < 10; i++ {
		}
	}()
}

func Daemon() {
	//sorallint:ignore goroleak process-lifetime daemon by design; it dies with the program
	go spin()
}
