// Package a is the call-graph unit-test fixture: static calls, interface
// dispatch, method values, closures, go statements, and a mutual-recursion
// SCC with distinguishable bottom-up effects.
package a

import "time"

// Runner is a module-declared interface: calls through it fan out to every
// implementation in the module.
type Runner interface {
	Run() int
}

type Fast struct{ n int }

func (f *Fast) Run() int { return f.n }

type Slow struct{ n int }

func (s *Slow) Run() int {
	time.Sleep(time.Millisecond)
	return s.n
}

// Dispatch calls through the interface.
func Dispatch(r Runner) int {
	return r.Run()
}

// MethodValue binds a method and calls the bound value.
func MethodValue(f *Fast) int {
	g := f.Run
	return g()
}

// Even and Odd are mutually recursive: one SCC, and Odd's allocation must
// surface in Even's summary.
func Even(n int) bool {
	if n == 0 {
		return true
	}
	return Odd(n - 1)
}

func Odd(n int) bool {
	if n == 0 {
		return false
	}
	_ = make([]int, 1)
	return Even(n - 1)
}

// Spawn starts a declared function and a literal.
func Spawn(ch chan int) {
	go worker(ch)
	go func() {
		ch <- 1
	}()
}

func worker(ch chan int) {
	ch <- 2
}

// MakeCounter returns a closure: an EdgeClosure from creator to literal.
func MakeCounter() func() int {
	n := 0
	return func() int {
		n++
		return n
	}
}
