package retry

import (
	"context"
	stdtime "time"
	"time"
)

func connect() error { return nil }

// A classic bare-sleep retry loop: flagged.
func pollUntilReady() {
	for i := 0; i < 5; i++ {
		if connect() == nil {
			return
		}
		time.Sleep(100 * time.Millisecond) // want `sleepretry: bare time.Sleep in a retry loop`
	}
}

// Range loops count too.
func drain(items []int) {
	for range items {
		time.Sleep(time.Millisecond) // want `sleepretry: bare time.Sleep in a retry loop`
	}
}

// An aliased import does not hide the call: resolution is by type, not text.
func aliased() {
	for {
		stdtime.Sleep(time.Second) // want `sleepretry: bare time.Sleep in a retry loop`
	}
}

// A sleep outside any loop is a plain delay, not a retry: allowed.
func warmup() {
	time.Sleep(10 * time.Millisecond)
}

// A callback defined inside a loop is not the loop retrying: allowed.
func callbacks(fns *[]func()) {
	for i := 0; i < 3; i++ {
		*fns = append(*fns, func() {
			time.Sleep(time.Millisecond)
		})
	}
}

// A retry loop inside a function literal anchors its own scan: flagged.
func nestedRetry() func() {
	return func() {
		for {
			time.Sleep(time.Second) // want `sleepretry: bare time.Sleep in a retry loop`
		}
	}
}

// The interruptible replacement shape (timer + select) is what the rule
// steers toward; it is not flagged.
func interruptible(ctx context.Context) {
	for i := 0; ; i++ {
		t := time.NewTimer(time.Duration(i) * time.Millisecond)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return
		}
	}
}
