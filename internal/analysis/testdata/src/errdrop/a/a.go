package a

import "linalg"

func drops() {
	linalg.Check()       // want `errdrop: call statement discards the error from linalg.Check`
	go linalg.Check()    // want `errdrop: go statement discards the error from linalg.Check`
	defer linalg.Check() // want `errdrop: defer statement discards the error from linalg.Check`
	f, _ := linalg.Factor() // want `errdrop: error from linalg.Factor assigned to _`
	_ = f
}

func dropsMethod(f *linalg.Fact) {
	f.Refine() // want `errdrop: call statement discards the error from linalg.Refine`
}

func handles() error {
	if err := linalg.Check(); err != nil {
		return err
	}
	f, err := linalg.Factor()
	if err != nil {
		return err
	}
	return f.Refine()
}

func pure(x []float64) {
	linalg.Norm(x) // no error result: nothing to drop
}

func local() {
	noErrHere() // functions outside the kernel packages are out of scope
}

func noErrHere() error { return nil }
