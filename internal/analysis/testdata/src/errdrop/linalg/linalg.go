package linalg

import "errors"

type Fact struct{}

func Factor() (*Fact, error) { return nil, errors.New("singular") }

func Check() error { return nil }

func (f *Fact) Refine() error { return nil }

func Norm(x []float64) float64 { return 0 }
