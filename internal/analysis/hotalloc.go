package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc statically pins what the AllocsPerRun benchmarks pin
// dynamically: every function reachable from a //soral:hotpath-annotated
// root (lp.SolveStandard, the Cholesky/block-tridiagonal/staircase kernels,
// the hist record path — code executed once per IPM iteration or more) must
// be free of allocation-inducing constructs — make/new, append growth,
// heap-escaping composite literals, escaping capturing closures, fmt calls,
// string<->[]byte conversions, and interface boxing into ...any variadics.
//
// Reachability follows the module call graph (static calls, module
// interface dispatch, function-value calls, closures) but skips cold
// sites: failure paths (blocks that exit with a non-nil typed error or
// panic), lazy-init and growth guards (`if ws == nil`, `if len(buf) < n` —
// exactly the paths a warm run never takes), recover handlers, and
// functions annotated //soral:coldpath (deliberate, measured overhead such
// as the goroutine fan-out of the parallel kernels; each use must justify
// itself in its doc comment). Closures that provably stay on the stack —
// defer wrappers, immediate invocations, locals only ever called — are not
// flagged, mirroring escape analysis.
var HotAlloc = &Analyzer{
	Name:      "hotalloc",
	Doc:       "no allocation-inducing constructs reachable from //soral:hotpath roots",
	SkipTests: true,
	Run:       runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	reportForPackage(pass, hotAllocModule)
}

// hotReach is one reachable function with its shortest hot chain.
type hotReach struct {
	node *Node
	via  []*Node // path from a root, root first, this node last
}

// hotAllocModule computes the module-wide hotalloc findings: multi-source
// BFS from the hot roots over warm edges, then a construct scan of every
// reachable body.
func hotAllocModule(in *Interp) []Diagnostic {
	g := in.Graph
	fset := g.Prog.Fset
	var diags []Diagnostic

	queue := make([]hotReach, 0, 8)
	seen := map[*Node]bool{}
	for _, root := range g.Roots() {
		queue = append(queue, hotReach{node: root, via: []*Node{root}})
		seen[root] = true
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		diags = append(diags, scanHotBody(fset, cur)...)
		for _, e := range cur.node.Calls {
			if e.Cold || e.Kind == EdgeGo {
				continue // failure/lazy-init paths and spawned work are not the hot lane
			}
			callee := e.Callee
			if callee.Cold || seen[callee] {
				continue
			}
			seen[callee] = true
			via := append(append([]*Node{}, cur.via...), callee)
			queue = append(queue, hotReach{node: callee, via: via})
		}
	}
	return diags
}

// chainLabel renders the reachability chain for a diagnostic: the root
// alone for direct findings, "root via a → b" for deeper ones.
func chainLabel(via []*Node) string {
	root := shortID(via[0])
	if len(via) <= 1 {
		return "hot root " + root
	}
	hops := make([]string, 0, len(via)-1)
	for _, n := range via[1 : len(via)-1] {
		hops = append(hops, shortID(n))
	}
	if len(hops) == 0 {
		return "hot root " + root
	}
	return fmt.Sprintf("hot root %s via %s", root, strings.Join(hops, " → "))
}

// shortID trims the module prefix off a node ID for readable diagnostics.
func shortID(n *Node) string {
	id := n.ID
	if i := strings.LastIndex(id, "/"); i >= 0 {
		id = id[i+1:]
	}
	return id
}

// scanHotBody reports every warm allocation-inducing construct in one
// reachable body. Cold sites (failure paths, nil guards, recover handlers)
// are exempt under the same rules the BFS uses for edges, so a function is
// judged exactly on the statements a warm, error-free run executes.
func scanHotBody(fset *token.FileSet, cur hotReach) []Diagnostic {
	n := cur.node
	body := n.Body()
	if body == nil {
		return nil
	}
	info := n.Pkg.Info
	chain := chainLabel(cur.via)
	var diags []Diagnostic
	report := func(pos token.Pos, what string) {
		diags = append(diags, Diagnostic{
			Check:    "hotalloc",
			Pos:      fset.Position(pos),
			Message:  fmt.Sprintf("%s in %s on the hot path (%s); hoist it into a workspace or move it off the hot lane", what, shortID(n), chain),
			Severity: SeverityError,
		})
	}
	walkStack(body, func(x ast.Node, stack []ast.Node) {
		if enclosedByNestedLit(body, stack) {
			return
		}
		switch e := x.(type) {
		case *ast.FuncLit:
			if e == n.Lit {
				return
			}
			if coldSite(info, stack) || stackAllocatedLit(info, body, e, stack) {
				return
			}
			if caps := capturedVars(info, e); len(caps) > 0 {
				names := make([]string, 0, len(caps))
				for _, v := range caps {
					names = append(names, v.Name())
				}
				report(e.Pos(), fmt.Sprintf("closure capturing %s allocates", strings.Join(names, ", ")))
			}
		case *ast.GoStmt:
			if !coldSite(info, stack) {
				report(e.Pos(), "go statement allocates a goroutine")
			}
		case *ast.UnaryExpr:
			// &T{...}: the composite escapes to the heap.
			if e.Op == token.AND {
				if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok && !coldSite(info, stack) {
					report(e.Pos(), "heap-escaping composite literal (&T{...})")
				}
			}
		case *ast.CompositeLit:
			// Slice and map literals always allocate their backing store;
			// struct value literals live on the stack and are fine.
			t := info.TypeOf(e)
			if t == nil || coldSite(info, stack) {
				return
			}
			switch t.Underlying().(type) {
			case *types.Slice, *types.Map:
				if !isAddrOfLit(stack) {
					report(e.Pos(), "slice/map literal allocates its backing store")
				}
			}
		case *ast.CallExpr:
			if coldSite(info, stack) {
				return
			}
			if what := allocatingConstruct(info, e); what != "" {
				report(e.Pos(), what+" allocates")
				return
			}
			if pos, param := boxesIntoVariadicAny(info, e); pos.IsValid() {
				report(pos, "interface boxing into "+param)
			}
		}
	})
	return diags
}

// stackAllocatedLit reports whether a capturing closure provably stays on
// the stack, mirroring what escape analysis decides for the common shapes:
//
//   - the function expression of an immediate call or a defer statement
//     (the panic-recovery wrapper every solver installs);
//   - the sole RHS of a := binding to a local variable that the body only
//     ever uses in call position (`residualsAt := func() ... ; residualsAt()`).
//
// A literal passed as an argument, returned, stored into a field, or bound
// to a variable that is itself passed on is NOT exempt: the callee (or the
// later use) may retain it, and escape analysis is interprocedurally
// conservative there — those closures are heap-allocated per call.
func stackAllocatedLit(info *types.Info, body *ast.BlockStmt, lit *ast.FuncLit, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	switch p := stack[len(stack)-1].(type) {
	case *ast.CallExpr:
		if ast.Unparen(p.Fun) == lit {
			// Immediate invocation; a defer statement's call lands here too
			// (the DeferStmt is the next ancestor up).
			return true
		}
	case *ast.AssignStmt:
		if p.Tok != token.DEFINE || len(p.Lhs) != 1 || len(p.Rhs) != 1 || p.Rhs[0] != lit {
			return false
		}
		id, ok := p.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		obj := info.Defs[id]
		if obj == nil {
			return false
		}
		onlyCalled := true
		ast.Inspect(body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if ok {
				if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && info.Uses[fid] == obj {
					// A use in call position: fine. Skip the Fun subtree so
					// the generic ident check below doesn't see it, but keep
					// scanning the arguments.
					for _, a := range call.Args {
						ast.Inspect(a, func(y ast.Node) bool {
							if yid, ok := y.(*ast.Ident); ok && info.Uses[yid] == obj {
								onlyCalled = false
							}
							return onlyCalled
						})
					}
					return false
				}
				return onlyCalled
			}
			if xid, ok := x.(*ast.Ident); ok && xid != id && info.Uses[xid] == obj {
				onlyCalled = false
			}
			return onlyCalled
		})
		return onlyCalled
	}
	return false
}

// isAddrOfLit reports whether the innermost ancestor is &lit — already
// reported as the heap-escape case, so the literal itself stays silent.
func isAddrOfLit(stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	ue, ok := stack[len(stack)-1].(*ast.UnaryExpr)
	return ok && ue.Op == token.AND
}

// boxesIntoVariadicAny reports the first concrete (non-interface, non-nil)
// argument passed to a ...any / ...interface{} parameter — each such
// argument is boxed into an interface value, allocating unless the value
// is pointer-shaped.
func boxesIntoVariadicAny(info *types.Info, call *ast.CallExpr) (token.Pos, string) {
	f := calleeFunc(info, call)
	if f == nil {
		return token.NoPos, ""
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || !sig.Variadic() || sig.Params().Len() == 0 {
		return token.NoPos, ""
	}
	last := sig.Params().At(sig.Params().Len() - 1)
	slice, ok := last.Type().(*types.Slice)
	if !ok {
		return token.NoPos, ""
	}
	iface, ok := slice.Elem().Underlying().(*types.Interface)
	if !ok || iface.NumMethods() != 0 {
		return token.NoPos, ""
	}
	fixed := sig.Params().Len() - 1
	if call.Ellipsis.IsValid() {
		return token.NoPos, "" // passing an existing slice, no per-arg boxing
	}
	for i := fixed; i < len(call.Args); i++ {
		arg := call.Args[i]
		t := info.TypeOf(arg)
		if t == nil || isNilIdent(info, arg) {
			continue
		}
		if _, isIface := t.Underlying().(*types.Interface); isIface {
			continue
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			continue // pointers box without allocating
		}
		return arg.Pos(), fmt.Sprintf("...%s parameter of %s", slice.Elem().String(), f.Name())
	}
	return token.NoPos, ""
}
