package analysis

import (
	"strings"
	"testing"
)

// loadGraph loads the callgraph fixture and builds its graph + summaries.
func loadGraph(t *testing.T) (*CallGraph, Summaries) {
	t.Helper()
	pr := loadFixture(t, "callgraph")
	g := BuildCallGraph(pr)
	return g, ComputeSummaries(g)
}

// nodeByID finds a node by its stable identifier.
func nodeByID(t *testing.T, g *CallGraph, id string) *Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.ID == id {
			return n
		}
	}
	var ids []string
	for _, n := range g.Nodes {
		ids = append(ids, n.ID)
	}
	t.Fatalf("no node %q; have:\n  %s", id, strings.Join(ids, "\n  "))
	return nil
}

// edgesTo filters a node's outgoing edges by callee ID.
func edgesTo(n *Node, calleeID string) []Edge {
	var out []Edge
	for _, e := range n.Calls {
		if e.Callee.ID == calleeID {
			out = append(out, e)
		}
	}
	return out
}

func TestCallGraphInterfaceDispatch(t *testing.T) {
	g, _ := loadGraph(t)
	d := nodeByID(t, g, "a.Dispatch")
	var impls []string
	for _, e := range d.Calls {
		if e.Kind != EdgeInterface {
			t.Errorf("Dispatch edge to %s has kind %s, want interface", e.Callee.ID, e.Kind)
		}
		impls = append(impls, e.Callee.ID)
	}
	want := []string{"a.(Fast).Run", "a.(Slow).Run"}
	if len(impls) != len(want) || impls[0] != want[0] || impls[1] != want[1] {
		t.Errorf("Dispatch fans out to %v, want %v", impls, want)
	}
}

func TestCallGraphMethodValue(t *testing.T) {
	g, _ := loadGraph(t)
	mv := nodeByID(t, g, "a.MethodValue")
	// g := f.Run; g() — the bound-value call resolves through the dynamic
	// signature-match fallback to the address-taken method.
	es := edgesTo(mv, "a.(Fast).Run")
	if len(es) == 0 {
		t.Fatalf("MethodValue has no edge to a.(Fast).Run; edges: %v", mv.Calls)
	}
	if es[0].Kind != EdgeDynamic {
		t.Errorf("method-value call resolved as %s, want dynamic", es[0].Kind)
	}
	if !nodeByID(t, g, "a.(Fast).Run").AddressTaken {
		t.Error("a.(Fast).Run should be address-taken (its value escapes in MethodValue)")
	}
}

func TestCallGraphRecursionSCC(t *testing.T) {
	g, sums := loadGraph(t)
	even := nodeByID(t, g, "a.Even")
	odd := nodeByID(t, g, "a.Odd")
	if even.scc != odd.scc {
		t.Errorf("Even (scc %d) and Odd (scc %d) should share one SCC", even.scc, odd.scc)
	}
	// Odd allocates directly; the SCC fixpoint must propagate the effect
	// into Even's summary even though Even itself is clean.
	for _, n := range []*Node{even, odd} {
		s := sums[n]
		if s == nil || !s.Allocates {
			t.Errorf("%s summary should report Allocates through the recursion cycle", n.ID)
		}
	}
}

func TestCallGraphBlockingSummaryThroughInterface(t *testing.T) {
	g, sums := loadGraph(t)
	// (*Slow).Run sleeps; Dispatch reaches it through interface dispatch,
	// so the blocking effect must flow bottom-up into Dispatch.
	if s := sums[nodeByID(t, g, "a.(Slow).Run")]; s == nil || !s.Blocks {
		t.Fatal("(Slow).Run summary should report Blocks (time.Sleep)")
	}
	if s := sums[nodeByID(t, g, "a.Dispatch")]; s == nil || !s.Blocks {
		t.Error("Dispatch summary should inherit Blocks via interface dispatch")
	}
}

func TestCallGraphSpawnsAndClosures(t *testing.T) {
	g, _ := loadGraph(t)
	sp := nodeByID(t, g, "a.Spawn")
	if len(sp.Spawns) != 2 {
		t.Fatalf("Spawn has %d go sites, want 2", len(sp.Spawns))
	}
	var targets []string
	for _, gs := range sp.Spawns {
		if gs.Callee == nil {
			t.Fatal("Spawn has an unresolved go target")
		}
		targets = append(targets, gs.Callee.ID)
	}
	if targets[0] == targets[1] {
		t.Errorf("both go sites resolved to %s", targets[0])
	}
	for _, id := range targets {
		if id != "a.worker" && !strings.HasPrefix(id, "a.Spawn.func") {
			t.Errorf("unexpected spawn target %s", id)
		}
	}

	mc := nodeByID(t, g, "a.MakeCounter")
	found := false
	for _, e := range mc.Calls {
		if e.Kind == EdgeClosure && strings.HasPrefix(e.Callee.ID, "a.MakeCounter.func") {
			found = true
		}
	}
	if !found {
		t.Errorf("MakeCounter has no closure edge to its literal; edges: %v", mc.Calls)
	}
}

func TestCallGraphDeterministicOrder(t *testing.T) {
	// Two independent builds must produce identical node and edge order.
	g1, _ := loadGraph(t)
	g2, _ := loadGraph(t)
	if len(g1.Nodes) != len(g2.Nodes) {
		t.Fatalf("node counts differ: %d vs %d", len(g1.Nodes), len(g2.Nodes))
	}
	for i := range g1.Nodes {
		a, b := g1.Nodes[i], g2.Nodes[i]
		if a.ID != b.ID {
			t.Fatalf("node %d: %s vs %s", i, a.ID, b.ID)
		}
		if len(a.Calls) != len(b.Calls) {
			t.Fatalf("%s: edge counts differ", a.ID)
		}
		for j := range a.Calls {
			if a.Calls[j].Callee.ID != b.Calls[j].Callee.ID || a.Calls[j].Kind != b.Calls[j].Kind {
				t.Fatalf("%s edge %d differs between builds", a.ID, j)
			}
		}
	}
}
