package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module-wide call graph the interprocedural analyzers
// (hotalloc, lockorder, goroleak, nondet) reason over. Nodes are the bodies
// of declared functions, methods, and function literals of the loaded
// module; edges are resolved for static calls, method calls, interface
// dispatch (restricted to module-declared interfaces, where the
// implementation set is closed), and calls through function-valued
// expressions (matched against every address-taken function of identical
// signature). The graph is stdlib-only like the rest of the framework:
// calls into the standard library are not nodes, and the few stdlib effects
// the analyzers care about (time.Sleep blocks, time.Now is nondeterministic,
// fmt allocates) are recognized by name at the call site instead.

// hotpathDirective marks a function as a latency-envelope root: everything
// statically reachable from it must stay allocation-free (see hotalloc).
const hotpathDirective = "//soral:hotpath"

// coldpathDirective exempts a function from hot-path reachability: the
// function is deliberate, measured overhead outside the solve envelope
// (e.g. flight-recorder emission). hotalloc neither scans it nor follows
// its calls. Every use must justify itself in the function's doc comment.
const coldpathDirective = "//soral:coldpath"

// EdgeKind classifies how a call site was resolved.
type EdgeKind int

const (
	// EdgeStatic is a direct call of a declared function or method.
	EdgeStatic EdgeKind = iota
	// EdgeInterface is a call through a module-declared interface method,
	// fanned out to every implementation in the module.
	EdgeInterface
	// EdgeDynamic is a call through a function-valued expression, fanned
	// out to every address-taken function of identical signature.
	EdgeDynamic
	// EdgeClosure links a function to a literal it creates (the literal
	// may run wherever the value flows, so reachability follows it).
	EdgeClosure
	// EdgeGo is a static or literal call spawned by a go statement.
	EdgeGo
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeInterface:
		return "interface"
	case EdgeDynamic:
		return "dynamic"
	case EdgeClosure:
		return "closure"
	case EdgeGo:
		return "go"
	}
	return "?"
}

// An Edge is one resolved call (or closure creation) site.
type Edge struct {
	Callee *Node
	Site   token.Pos
	Kind   EdgeKind
	// Cold marks sites the hot-path walk must not follow: the call sits on
	// a failure path (the enclosing block ends by returning a non-nil
	// error or panicking), behind a lazy-init nil guard, or inside a
	// deferred recover handler. Summaries still follow cold edges — a
	// blocking call on an error path still blocks.
	Cold bool
}

// A Node is one function body in the call graph.
type Node struct {
	// ID is a stable, human-readable identifier: "pkg.Func",
	// "pkg.(Type).Method", or "<enclosing>.funcN" for literals. IDs order
	// the graph deterministically.
	ID   string
	Pkg  *Package
	File *ast.File

	// Func is the declared object (nil for function literals).
	Func *types.Func
	// Decl is the declaration (nil for literals); Lit the literal (nil
	// for declarations). Exactly one is set.
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit

	// Hot and Cold record the //soral:hotpath and //soral:coldpath
	// directives on the declaration.
	Hot  bool
	Cold bool

	// Calls lists the resolved outgoing edges in deterministic order.
	Calls []Edge

	// Spawns lists the go statements in this body with their resolved
	// targets (nil Callee when the spawnee could not be resolved).
	Spawns []GoSite

	// AddressTaken is set when the function's value escapes a direct call
	// (assigned, passed, stored): it becomes a candidate callee for every
	// dynamic call of matching signature.
	AddressTaken bool

	scc int // SCC index; callees have lower-or-equal indices
}

// GoSite is one go statement.
type GoSite struct {
	Stmt   *ast.GoStmt
	Callee *Node // nil when spawning an unresolvable or stdlib function
}

// Body returns the function body (nil for bodyless declarations).
func (n *Node) Body() *ast.BlockStmt {
	if n.Lit != nil {
		return n.Lit.Body
	}
	return n.Decl.Body
}

// Sig returns the node's signature type.
func (n *Node) Sig() *types.Signature {
	if n.Func != nil {
		return n.Func.Type().(*types.Signature)
	}
	if t, ok := n.Pkg.Info.TypeOf(n.Lit).(*types.Signature); ok {
		return t
	}
	return nil
}

// Pos returns the declaration position.
func (n *Node) Pos() token.Pos {
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	return n.Decl.Pos()
}

// A CallGraph is the module-wide graph plus its SCC condensation.
type CallGraph struct {
	Prog  *Program
	Nodes []*Node // sorted by ID

	// SCCs lists the strongly connected components in callee-first
	// (reverse topological) order: every edge leaving a component lands in
	// an earlier one, so bottom-up summaries are a single forward pass.
	SCCs [][]*Node

	byFunc map[*types.Func]*Node
	byLit  map[*ast.FuncLit]*Node
}

// NodeOf resolves a declared function or method to its graph node.
func (g *CallGraph) NodeOf(f *types.Func) *Node { return g.byFunc[f] }

// NodeOfLit resolves a function literal to its graph node.
func (g *CallGraph) NodeOfLit(l *ast.FuncLit) *Node { return g.byLit[l] }

// Roots returns the //soral:hotpath-annotated nodes in ID order.
func (g *CallGraph) Roots() []*Node {
	var roots []*Node
	for _, n := range g.Nodes {
		if n.Hot {
			roots = append(roots, n)
		}
	}
	return roots
}

// BuildCallGraph constructs the module call graph over a loaded program.
func BuildCallGraph(pr *Program) *CallGraph {
	g := &CallGraph{
		Prog:   pr,
		byFunc: map[*types.Func]*Node{},
		byLit:  map[*ast.FuncLit]*Node{},
	}
	b := &graphBuilder{g: g}
	for _, pkg := range pr.Packages {
		b.collectNodes(pkg)
	}
	sort.Slice(g.Nodes, func(i, j int) bool { return g.Nodes[i].ID < g.Nodes[j].ID })
	b.collectImplementations()
	for _, pkg := range pr.Packages {
		b.markAddressTaken(pkg)
	}
	for _, n := range g.Nodes {
		b.resolveCalls(n)
	}
	g.condense()
	return g
}

type graphBuilder struct {
	g *CallGraph
	// impls maps a module-declared interface method (its *types.Func) to
	// the concrete module methods that satisfy it.
	impls map[*types.Func][]*Node
	// takenBySig caches the address-taken nodes, matched by signature at
	// dynamic call sites.
	taken []*Node
}

// directiveLines returns the set of file lines carrying the given comment
// directive, so both doc comments and standalone comments above a
// declaration attach.
func directiveLines(fset *token.FileSet, f *ast.File, directive string) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, directive) {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// hasDirective reports whether decl is annotated: the directive appears in
// its doc comment or on the line directly above the declaration.
func hasDirective(fset *token.FileSet, lines map[int]bool, decl *ast.FuncDecl) bool {
	if len(lines) == 0 {
		return false
	}
	if decl.Doc != nil {
		for l := fset.Position(decl.Doc.Pos()).Line; l <= fset.Position(decl.Doc.End()).Line; l++ {
			if lines[l] {
				return true
			}
		}
	}
	return lines[fset.Position(decl.Pos()).Line-1]
}

// collectNodes creates nodes for every declared function and literal of pkg.
func (b *graphBuilder) collectNodes(pkg *Package) {
	fset := b.g.Prog.Fset
	for _, f := range pkg.Files {
		if pkg.IsTest[f] {
			continue // the hot path and its analyzers live in shipped code
		}
		hotLines := directiveLines(fset, f, hotpathDirective)
		coldLines := directiveLines(fset, f, coldpathDirective)
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			n := &Node{
				ID:   declID(pkg, fd, obj),
				Pkg:  pkg,
				File: f,
				Func: obj,
				Decl: fd,
				Hot:  hasDirective(fset, hotLines, fd),
				Cold: hasDirective(fset, coldLines, fd),
			}
			b.g.Nodes = append(b.g.Nodes, n)
			b.g.byFunc[obj] = n
			b.collectLits(pkg, f, n, fd.Body)
		}
	}
}

// collectLits creates one node per function literal, nested literals
// included, each identified relative to its enclosing declaration.
func (b *graphBuilder) collectLits(pkg *Package, f *ast.File, encl *Node, body *ast.BlockStmt) {
	fset := b.g.Prog.Fset
	i := 0
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		i++
		pos := fset.Position(lit.Pos())
		ln := &Node{
			ID:   fmt.Sprintf("%s.func%d@%d", encl.ID, i, pos.Line),
			Pkg:  pkg,
			File: f,
			Lit:  lit,
		}
		b.g.Nodes = append(b.g.Nodes, ln)
		b.g.byLit[lit] = ln
		return true // recurse: nested literals number depth-first
	})
}

// declID builds the stable identifier of a declared function.
func declID(pkg *Package, fd *ast.FuncDecl, obj *types.Func) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return pkg.Path + "." + obj.Name()
	}
	t := fd.Recv.List[0].Type
	if se, ok := t.(*ast.StarExpr); ok {
		t = se.X
	}
	recv := "?"
	switch rt := t.(type) {
	case *ast.Ident:
		recv = rt.Name
	case *ast.IndexExpr: // generic receiver
		if id, ok := rt.X.(*ast.Ident); ok {
			recv = id.Name
		}
	}
	return pkg.Path + ".(" + recv + ")." + obj.Name()
}

// collectImplementations indexes, for every method of every module-declared
// interface, the concrete module methods implementing it. Stdlib interfaces
// (error, io.Writer, ...) are deliberately excluded: their implementation
// set is open and fanning out over it would drown the graph in edges.
func (b *graphBuilder) collectImplementations() {
	b.impls = map[*types.Func][]*Node{}
	var ifaces []*types.Interface
	var ifaceObjs []*types.TypeName
	var concrete []*types.Named
	for _, pkg := range b.g.Prog.Packages {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if iface, ok := named.Underlying().(*types.Interface); ok {
				ifaces = append(ifaces, iface)
				ifaceObjs = append(ifaceObjs, tn)
			} else {
				concrete = append(concrete, named)
			}
		}
	}
	for i, iface := range ifaces {
		_ = ifaceObjs[i]
		for _, named := range concrete {
			ptr := types.NewPointer(named)
			if !types.Implements(ptr, iface) && !types.Implements(named, iface) {
				continue
			}
			ms := types.NewMethodSet(ptr)
			for m := 0; m < iface.NumMethods(); m++ {
				im := iface.Method(m)
				sel := ms.Lookup(im.Pkg(), im.Name())
				if sel == nil {
					continue
				}
				cf, ok := sel.Obj().(*types.Func)
				if !ok {
					continue
				}
				if node := b.g.byFunc[cf]; node != nil {
					b.impls[im] = append(b.impls[im], node)
				}
			}
		}
	}
	for _, nodes := range b.impls {
		sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	}
}

// markAddressTaken records every function whose value escapes a direct call
// position: it may be invoked through any function-typed variable of the
// same signature.
func (b *graphBuilder) markAddressTaken(pkg *Package) {
	for _, f := range pkg.Files {
		if pkg.IsTest[f] {
			continue
		}
		walkStack(f, func(n ast.Node, stack []ast.Node) {
			switch e := n.(type) {
			case *ast.Ident:
				fn, ok := pkg.Info.Uses[e].(*types.Func)
				if !ok {
					return
				}
				node := b.g.byFunc[fn]
				if node == nil || node.AddressTaken {
					return
				}
				if !inCallPosition(e, stack) {
					node.AddressTaken = true
				}
			case *ast.FuncLit:
				node := b.g.byLit[e]
				if node == nil || node.AddressTaken {
					return
				}
				if !inCallPosition(e, stack) {
					node.AddressTaken = true
				}
			}
		})
	}
	b.taken = b.taken[:0]
	for _, n := range b.g.Nodes {
		if n.AddressTaken {
			b.taken = append(b.taken, n)
		}
	}
}

// inCallPosition reports whether expr is exactly the callee of a call
// expression (directly or through a selector/parens), i.e. the reference is
// a plain invocation rather than a value use.
func inCallPosition(expr ast.Expr, stack []ast.Node) bool {
	e := ast.Expr(expr)
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.ParenExpr:
			e = p
		case *ast.SelectorExpr:
			if p.Sel != expr {
				return false
			}
			e = p
		case *ast.CallExpr:
			return p.Fun == e
		default:
			return false
		}
	}
	return false
}

// resolveCalls fills n.Calls and n.Spawns from the statements that belong
// to n's own body — nested literal bodies are separate nodes and get their
// own edges, linked from here by one EdgeClosure per literal.
func (b *graphBuilder) resolveCalls(n *Node) {
	body := n.Body()
	if body == nil {
		return
	}
	info := n.Pkg.Info
	var edges []Edge
	walkStack(body, func(x ast.Node, stack []ast.Node) {
		// Skip anything inside a nested literal: ownDepth guards by
		// checking no FuncLit between body and x other than n.Lit itself.
		if enclosedByNestedLit(body, stack) {
			return
		}
		switch e := x.(type) {
		case *ast.FuncLit:
			if ln := b.g.byLit[e]; ln != nil {
				edges = append(edges, Edge{
					Callee: ln, Site: e.Pos(), Kind: EdgeClosure,
					Cold: coldSite(info, stack),
				})
			}
		case *ast.GoStmt:
			n.Spawns = append(n.Spawns, GoSite{Stmt: e, Callee: b.spawnTarget(info, e.Call)})
		case *ast.CallExpr:
			for _, edge := range b.resolveCall(n, info, e, stack) {
				edges = append(edges, edge)
			}
		}
	})
	// go f(...) also creates call edges so reachability crosses spawns.
	for _, gs := range n.Spawns {
		if gs.Callee != nil {
			edges = append(edges, Edge{Callee: gs.Callee, Site: gs.Stmt.Pos(), Kind: EdgeGo})
		}
	}
	sort.SliceStable(edges, func(i, j int) bool {
		if edges[i].Callee.ID != edges[j].Callee.ID {
			return edges[i].Callee.ID < edges[j].Callee.ID
		}
		return edges[i].Site < edges[j].Site
	})
	n.Calls = edges
}

// spawnTarget resolves the function a go statement runs.
func (b *graphBuilder) spawnTarget(info *types.Info, call *ast.CallExpr) *Node {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return b.g.byLit[lit]
	}
	if f := calleeFunc(info, call); f != nil {
		return b.g.byFunc[f]
	}
	return nil
}

// resolveCall resolves one call expression into zero or more edges.
func (b *graphBuilder) resolveCall(n *Node, info *types.Info, call *ast.CallExpr, stack []ast.Node) []Edge {
	cold := coldSite(info, stack)
	// Immediately invoked literal: the closure edge already covers it.
	if _, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return nil
	}
	if f := calleeFunc(info, call); f != nil {
		if target := b.g.byFunc[f]; target != nil {
			return []Edge{{Callee: target, Site: call.Pos(), Kind: EdgeStatic, Cold: cold}}
		}
		// A declared function without a node: either stdlib or an
		// interface method. Interface methods of module interfaces fan
		// out to the collected implementations.
		if impls := b.impls[f]; len(impls) > 0 {
			out := make([]Edge, 0, len(impls))
			for _, impl := range impls {
				out = append(out, Edge{Callee: impl, Site: call.Pos(), Kind: EdgeInterface, Cold: cold})
			}
			return out
		}
		return nil
	}
	// Not a declared function: a call through a function-typed value
	// (variable, field, parameter, method value). Fan out to every
	// address-taken function of identical signature — but only while the
	// candidate set stays small. Ubiquitous signatures like func() or
	// func() error match dozens of unrelated functions, and edges to all of
	// them are pure noise: the EdgeClosure from each literal's creator
	// already keeps the real data flow reachable (creator → literal →
	// callees), so an over-full dynamic set only manufactures false paths
	// (e.g. wiring every callback combinator to every closure in the
	// module).
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return nil // conversion or builtin
	}
	var out []Edge
	for _, cand := range b.taken {
		cs := cand.Sig()
		if cs == nil || cs.Recv() != nil && cand.Lit == nil {
			// Method candidates match through their bound-value signature,
			// which is receiverless; compare without the receiver.
			cs = types.NewSignatureType(nil, nil, nil, cs.Params(), cs.Results(), cs.Variadic())
		}
		if cs != nil && types.Identical(cs, sig) {
			out = append(out, Edge{Callee: cand, Site: call.Pos(), Kind: EdgeDynamic, Cold: cold})
			if len(out) > dynamicFanoutCap {
				return nil
			}
		}
	}
	return out
}

// dynamicFanoutCap bounds the signature-match fallback: a function-valued
// call whose signature matches more candidates than this gets no dynamic
// edges at all, because the set is too imprecise to mean anything.
const dynamicFanoutCap = 6

// enclosedByNestedLit reports whether the innermost enclosing function
// literal on the stack is *not* the node body being scanned — i.e. the
// current AST node belongs to a nested literal's own graph node.
func enclosedByNestedLit(body *ast.BlockStmt, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		if lit, ok := stack[i].(*ast.FuncLit); ok {
			return lit.Body != body
		}
	}
	return false
}

// coldSite classifies a call/allocation site the hot-path walk may skip:
//
//   - failure path: an enclosing block (if/case body, not the function
//     body itself) ends by returning a non-nil error or panicking — the
//     hot invariant protects the steady-state path, and failure exits are
//     allowed to allocate their diagnostics;
//   - lazy init / growth: the site sits under `if x == nil { ... }` or a
//     len/cap size comparison (`if len(buf) < n { buf = make(...) }`), the
//     cold-start-then-reuse idiom of the workspace machinery (what
//     AllocsPerRun measures warm is exactly the path with the guard not
//     taken);
//   - recover handler: the site is guarded by a recover() call (in the
//     condition or the if's init statement) — panic recovery is never the
//     steady state.
func coldSite(info *types.Info, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.FuncLit, *ast.FuncDecl:
			return false
		case *ast.IfStmt:
			if coldGuard(info, s.Cond) || initMentionsRecover(info, s.Init) {
				return true
			}
		case *ast.BlockStmt:
			if blockFails(info, s) {
				return true
			}
		case *ast.CaseClause:
			if clauseFails(info, s.Body) {
				return true
			}
		case *ast.CommClause:
			// A select arm that exits with a typed error (the ctx.Done()
			// cancellation case) is a failure path like any other.
			if clauseFails(info, s.Body) {
				return true
			}
		}
	}
	return false
}

// coldGuard recognizes a lazy-init or growth condition. A disjunction is a
// cold guard when any disjunct is one: `if c.L == nil || c.L.Rows != n`
// reallocates on first use or reshape, both off the steady-state path.
func coldGuard(info *types.Info, cond ast.Expr) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if ok && be.Op == token.LOR {
		return coldGuard(info, be.X) || coldGuard(info, be.Y)
	}
	return isNilGuard(info, cond) || isGrowthGuard(info, cond) || mentionsRecover(info, cond)
}

// isNilGuard matches `x == nil` (possibly parenthesized).
func isNilGuard(info *types.Info, cond ast.Expr) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || be.Op != token.EQL {
		return false
	}
	return isNilIdent(info, be.X) || isNilIdent(info, be.Y)
}

// isGrowthGuard matches a capacity comparison with len() or cap() on either
// side — `len(buf) < n`, `cap(w.x) != need` — the amortized-growth idiom:
// the allocation under it runs only while the buffer is still growing to
// the high-water mark, never in the steady state.
func isGrowthGuard(info *types.Info, cond ast.Expr) bool {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch be.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ, token.NEQ:
	default:
		return false
	}
	return isLenCapCall(info, be.X) || isLenCapCall(info, be.Y)
}

func isLenCapCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	return ok && (isBuiltin(info, call, "len") || isBuiltin(info, call, "cap"))
}

// initMentionsRecover reports a recover() call in an if statement's init —
// the canonical `if r := recover(); r != nil` handler shape.
func initMentionsRecover(info *types.Info, s ast.Stmt) bool {
	as, ok := s.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, r := range as.Rhs {
		if mentionsRecover(info, r) {
			return true
		}
	}
	return false
}

// mentionsRecover reports whether the expression calls recover().
func mentionsRecover(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isBuiltin(info, call, "recover") {
			found = true
		}
		return !found
	})
	return found
}

// blockFails reports whether the block's final statement exits with a
// non-nil error or panics.
func blockFails(info *types.Info, b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	return clauseFails(info, b.List[len(b.List)-1:])
}

func clauseFails(info *types.Info, stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		for _, r := range last.Results {
			if implementsError(info.TypeOf(r)) && !isNilIdent(info, r) {
				return true
			}
		}
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok && isBuiltin(info, call, "panic") {
			return true
		}
	}
	return false
}

// condense runs Tarjan's algorithm, filling node SCC indices and the
// callee-first component order.
func (g *CallGraph) condense() {
	index := map[*Node]int{}
	low := map[*Node]int{}
	onStack := map[*Node]bool{}
	var stack []*Node
	next := 0

	var strongConnect func(n *Node)
	strongConnect = func(n *Node) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, e := range n.Calls {
			m := e.Callee
			if _, seen := index[m]; !seen {
				strongConnect(m)
				if low[m] < low[n] {
					low[n] = low[m]
				}
			} else if onStack[m] && index[m] < low[n] {
				low[n] = index[m]
			}
		}
		if low[n] == index[n] {
			var comp []*Node
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				comp = append(comp, m)
				if m == n {
					break
				}
			}
			sort.Slice(comp, func(i, j int) bool { return comp[i].ID < comp[j].ID })
			for _, m := range comp {
				m.scc = len(g.SCCs)
			}
			g.SCCs = append(g.SCCs, comp)
		}
	}
	for _, n := range g.Nodes {
		if _, seen := index[n]; !seen {
			strongConnect(n)
		}
	}
}
