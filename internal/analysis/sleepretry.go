package analysis

import (
	"go/ast"
)

// SleepRetry flags bare time.Sleep calls inside for-loop bodies. A sleep in a
// loop is almost always a retry/poll delay, and a bare one has none of the
// properties the resilience layer needs: it cannot be interrupted by a
// context, it has no jitter (a fleet of retriers thunders in lockstep), and
// it is not reproducible under the chaos harness's deterministic schedules.
// resilience.Backoff.Sleep provides all three — bounded decorrelated jitter,
// ctx-interruptible waiting, and seeded determinism.
//
// Function literals nested inside a loop are not scanned against the
// enclosing loop: a callback defined in a loop body is not the loop
// retrying. A retry loop inside such a literal is still caught, because
// every for statement anchors its own scan.
var SleepRetry = &Analyzer{
	Name:      "sleepretry",
	Doc:       "retry loops must use resilience.Backoff.Sleep, not bare time.Sleep (uninterruptible, unjittered, nondeterministic)",
	SkipTests: true,
	Run:       runSleepRetry,
}

func runSleepRetry(pass *Pass) {
	info := pass.Info()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			// Scan this loop's body, stopping at nested function literals;
			// nested loops re-anchor their own scan (duplicate findings on
			// the same call dedup downstream).
			ast.Inspect(body, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok {
					return false
				}
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil &&
					fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
					pass.Reportf(call.Pos(),
						"bare time.Sleep in a retry loop is uninterruptible and unjittered; use resilience.Backoff.Sleep(ctx, attempt)")
				}
				return true
			})
			return true
		})
	}
}
