package analysis

import (
	"fmt"
	"time"
)

// RunConfig selects what Run analyzes.
type RunConfig struct {
	// Dir is any directory inside the module; Run resolves the module root
	// and analyzes every package under it.
	Dir string

	// Checks restricts the analyzers by name; empty means the full registry.
	Checks []string
}

// PackageResult carries the outcome and cost of analyzing one package.
type PackageResult struct {
	Path        string
	Files       int
	Duration    time.Duration // analyzer wall time for this package (excludes load)
	Diagnostics []Diagnostic
}

// Result is the outcome of one Run.
type Result struct {
	Packages          []PackageResult
	LoadDuration      time.Duration // parse + type-check time for the whole module
	CallGraphDuration time.Duration // call graph + summary construction (interprocedural runs only)
	// Analyzers records per-analyzer wall time summed over all packages.
	// For the interprocedural analyzers the first package pays the
	// module-wide computation; CallGraphDuration separates the shared
	// graph/summary build from the per-analyzer scans.
	Analyzers   map[string]time.Duration
	Diagnostics []Diagnostic // all surviving diagnostics, merged and sorted
}

// Run loads the module containing cfg.Dir and analyzes every package.
//
// Unused suppression directives are always reported (as warnings) when the
// full check set runs; with a restricted -checks list they are skipped,
// because a suppression for an analyzer that did not run always looks
// unused.
func Run(cfg RunConfig) (*Result, error) {
	root, module, err := FindModuleRoot(cfg.Dir)
	if err != nil {
		return nil, err
	}
	loadStart := time.Now()
	pr, err := Load(LoadConfig{Dir: root, Module: module})
	if err != nil {
		return nil, err
	}
	checks, err := selectChecks(cfg.Checks)
	if err != nil {
		return nil, err
	}
	res := &Result{
		LoadDuration: time.Since(loadStart),
		Analyzers:    make(map[string]time.Duration, len(checks)),
	}
	if needsInterp(checks) {
		// Build the call graph and summaries eagerly so the cost lands in
		// CallGraphDuration rather than inside whichever interprocedural
		// analyzer happens to run first.
		res.CallGraphDuration = pr.Interp().BuildTime
	}
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	fullSet := len(cfg.Checks) == 0
	for _, pkg := range pr.Packages {
		start := time.Now()
		diags := analyzePackageTimed(pr, pkg, checks, res.Analyzers)
		dirs, problems := ParseDirectives(pr.Fset, pkg, known)
		diags = Suppress(diags, dirs)
		diags = append(diags, problems...)
		if fullSet {
			diags = append(diags, UnusedDirectives(dirs)...)
		}
		diags = sortDiagnostics(diags)
		res.Packages = append(res.Packages, PackageResult{
			Path:        pkg.Path,
			Files:       len(pkg.Files),
			Duration:    time.Since(start),
			Diagnostics: diags,
		})
		res.Diagnostics = append(res.Diagnostics, diags...)
	}
	// Per-package slices are already sorted; the merged view must be too,
	// independent of package visit order.
	res.Diagnostics = sortDiagnostics(res.Diagnostics)
	return res, nil
}

// needsInterp reports whether any selected analyzer requires the module
// call graph.
func needsInterp(checks []*Analyzer) bool {
	for _, a := range checks {
		switch a {
		case HotAlloc, LockOrder, GoroLeak, NonDet:
			return true
		}
	}
	return false
}

// selectChecks resolves names against the registry (all when empty).
func selectChecks(names []string) ([]*Analyzer, error) {
	if len(names) == 0 {
		return Analyzers(), nil
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := ByName(n)
		if !ok {
			return nil, fmt.Errorf("analysis: unknown check %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// AnalyzePackage runs the given analyzers over one package and returns the
// raw (pre-suppression) diagnostics, sorted and deduplicated.
func AnalyzePackage(pr *Program, pkg *Package, checks []*Analyzer) []Diagnostic {
	return analyzePackageTimed(pr, pkg, checks, nil)
}

func analyzePackageTimed(pr *Program, pkg *Package, checks []*Analyzer, timings map[string]time.Duration) []Diagnostic {
	var diags []Diagnostic
	for _, a := range checks {
		pass := &Pass{
			Analyzer: a,
			Fset:     pr.Fset,
			Pkg:      pkg,
			Prog:     pr,
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		start := time.Now()
		a.Run(pass)
		if timings != nil {
			timings[a.Name] += time.Since(start)
		}
	}
	return sortDiagnostics(diags)
}
