package analysis

import (
	"fmt"
	"time"
)

// RunConfig selects what Run analyzes.
type RunConfig struct {
	// Dir is any directory inside the module; Run resolves the module root
	// and analyzes every package under it.
	Dir string

	// Checks restricts the analyzers by name; empty means the full registry.
	Checks []string

	// ReportUnused additionally reports suppressions that matched nothing.
	// Only meaningful with the full check set: a suppression for an analyzer
	// that did not run always looks unused.
	ReportUnused bool
}

// PackageResult carries the outcome and cost of analyzing one package.
type PackageResult struct {
	Path        string
	Files       int
	Duration    time.Duration // analyzer wall time for this package (excludes load)
	Diagnostics []Diagnostic
}

// Result is the outcome of one Run.
type Result struct {
	Packages     []PackageResult
	LoadDuration time.Duration // parse + type-check time for the whole module
	Diagnostics  []Diagnostic  // all surviving diagnostics, sorted
}

// Run loads the module containing cfg.Dir and analyzes every package.
func Run(cfg RunConfig) (*Result, error) {
	root, module, err := FindModuleRoot(cfg.Dir)
	if err != nil {
		return nil, err
	}
	loadStart := time.Now()
	pr, err := Load(LoadConfig{Dir: root, Module: module})
	if err != nil {
		return nil, err
	}
	checks, err := selectChecks(cfg.Checks)
	if err != nil {
		return nil, err
	}
	res := &Result{LoadDuration: time.Since(loadStart)}
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, pkg := range pr.Packages {
		start := time.Now()
		diags := AnalyzePackage(pr, pkg, checks)
		dirs, problems := ParseDirectives(pr.Fset, pkg, known)
		diags = Suppress(diags, dirs)
		diags = append(diags, problems...)
		if cfg.ReportUnused {
			diags = append(diags, UnusedDirectives(dirs)...)
		}
		diags = sortDiagnostics(diags)
		res.Packages = append(res.Packages, PackageResult{
			Path:        pkg.Path,
			Files:       len(pkg.Files),
			Duration:    time.Since(start),
			Diagnostics: diags,
		})
		res.Diagnostics = append(res.Diagnostics, diags...)
	}
	return res, nil
}

// selectChecks resolves names against the registry (all when empty).
func selectChecks(names []string) ([]*Analyzer, error) {
	if len(names) == 0 {
		return Analyzers(), nil
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := ByName(n)
		if !ok {
			return nil, fmt.Errorf("analysis: unknown check %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// AnalyzePackage runs the given analyzers over one package and returns the
// raw (pre-suppression) diagnostics, sorted and deduplicated.
func AnalyzePackage(pr *Program, pkg *Package, checks []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range checks {
		pass := &Pass{
			Analyzer: a,
			Fset:     pr.Fset,
			Pkg:      pkg,
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		a.Run(pass)
	}
	return sortDiagnostics(diags)
}
