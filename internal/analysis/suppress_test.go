package analysis

import (
	"go/token"
	"strings"
	"testing"
)

func position(file string, line int) token.Position {
	return token.Position{Filename: file, Line: line}
}

// suppressFixture runs the full Run pipeline (analyze, parse directives,
// suppress, collect problems) over testdata/src/suppress and returns the
// surviving diagnostics plus the parsed directives.
func suppressFixture(t *testing.T) ([]Diagnostic, []*Directive) {
	t.Helper()
	pr := loadFixture(t, "suppress")
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	var diags []Diagnostic
	var dirs []*Directive
	for _, pkg := range pr.Packages {
		d := AnalyzePackage(pr, pkg, Analyzers())
		pd, problems := ParseDirectives(pr.Fset, pkg, known)
		d = Suppress(d, pd)
		diags = append(diags, d...)
		diags = append(diags, problems...)
		dirs = append(dirs, pd...)
	}
	return sortDiagnostics(diags), dirs
}

func countMatching(diags []Diagnostic, check, substr string) int {
	n := 0
	for _, d := range diags {
		if d.Check == check && strings.Contains(d.Message, substr) {
			n++
		}
	}
	return n
}

func TestSuppressionPipeline(t *testing.T) {
	diags, dirs := suppressFixture(t)

	// Three directives parse successfully: the two valid floatcmp
	// suppressions and the wrong-check divguard one.
	if len(dirs) != 3 {
		t.Fatalf("parsed %d directives, want 3:\n%v", len(dirs), dirs)
	}

	// The fixture has four floatcmp findings; the two with valid matching
	// directives are suppressed. The wrong-check and missing-reason sites
	// survive.
	if got := countMatching(diags, "floatcmp", "floating-point"); got != 2 {
		t.Errorf("got %d surviving floatcmp findings, want 2 (wrongCheck and missingReason sites):\n%v", got, diags)
	}

	// Every malformed-directive class surfaces as an unsuppressible
	// "sorallint" diagnostic.
	for _, want := range []string{
		"bare //sorallint:ignore",
		`unknown check "nosuchcheck"`,
		`unknown directive "disable"`,
		`suppression of "floatcmp" has no reason`,
	} {
		if got := countMatching(diags, "sorallint", want); got != 1 {
			t.Errorf("got %d sorallint diagnostics containing %q, want 1", got, want)
		}
	}

	// The unknown-check problem lists the registry so the author can fix
	// the name without hunting for it.
	for _, d := range diags {
		if strings.Contains(d.Message, "nosuchcheck") && !strings.Contains(d.Message, "floatcmp") {
			t.Errorf("unknown-check problem does not list known checks: %s", d.Message)
		}
	}

	// Directive problems carry the unsuppressible severity.
	for _, d := range diags {
		if d.Check == "sorallint" && d.Severity != SeverityDirective {
			t.Errorf("directive problem with suppressible severity: %s", d)
		}
	}
}

func TestSuppressionUsage(t *testing.T) {
	_, dirs := suppressFixture(t)

	used, unused := 0, 0
	for _, d := range dirs {
		if d.used {
			used++
		} else {
			unused++
		}
	}
	if used != 2 || unused != 1 {
		t.Fatalf("got %d used / %d unused directives, want 2/1", used, unused)
	}

	// UnusedDirectives (the -unused mode) reports exactly the wrong-check
	// suppression, naming its check and recorded reason.
	rep := UnusedDirectives(dirs)
	if len(rep) != 1 {
		t.Fatalf("UnusedDirectives reported %d, want 1:\n%v", len(rep), rep)
	}
	if !strings.Contains(rep[0].Message, "unused suppression for divguard") {
		t.Errorf("unused report does not name the check: %s", rep[0].Message)
	}
	if !strings.Contains(rep[0].Message, "stays unused") {
		t.Errorf("unused report does not echo the reason: %s", rep[0].Message)
	}
	if rep[0].Severity != SeverityWarning {
		t.Errorf("unused report must be a warning (failure only under -strict-suppress), got severity %d", rep[0].Severity)
	}
}

// TestSuppressionSameLineAndBelow pins the directive's reach: its own line
// and the line directly below, nothing further.
func TestSuppressionSameLineAndBelow(t *testing.T) {
	dirs := []*Directive{{
		Check: "floatcmp",
		Pos:   position("f.go", 10),
	}}
	mk := func(line int) Diagnostic {
		return Diagnostic{Check: "floatcmp", Pos: position("f.go", line), Message: "m"}
	}
	kept := Suppress([]Diagnostic{mk(9), mk(10), mk(11), mk(12)}, dirs)
	if len(kept) != 2 || kept[0].Pos.Line != 9 || kept[1].Pos.Line != 12 {
		t.Fatalf("directive at line 10 should suppress lines 10-11 only, kept: %v", kept)
	}

	// A different check on a covered line is untouched.
	other := []Diagnostic{{Check: "divguard", Pos: position("f.go", 10), Message: "m"}}
	if kept := Suppress(other, dirs); len(kept) != 1 {
		t.Fatalf("directive suppressed a different check: %v", kept)
	}
}
