package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ScopeNil enforces the telemetry nil-receiver contract. The nil *obs.Scope
// is the disabled state — instrumented code calls it unconditionally — so
// the contract has two sides:
//
//   - inside package obs, every exported method with a *Scope receiver must
//     be nil-safe: it either opens with an `if s == nil` guard or touches
//     the receiver only in nil comparisons (the Enabled pattern);
//   - outside obs, the handle must stay a pointer: a value-typed obs.Scope
//     (field, parameter, variable) or an explicit dereference copies state
//     and panics on the disabled nil handle.
var ScopeNil = &Analyzer{
	Name:      "scopenil",
	Doc:       "*obs.Scope must follow the nil-safe handle pattern",
	SkipTests: true,
	Run:       runScopeNil,
}

func runScopeNil(pass *Pass) {
	if pass.Pkg.Name == "obs" {
		checkScopeMethods(pass)
		return
	}
	checkScopeUses(pass)
}

// checkScopeMethods verifies the nil-guard on exported *Scope methods.
func checkScopeMethods(pass *Pass) {
	info := pass.Info()
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !fd.Name.IsExported() || fd.Body == nil {
				continue
			}
			if len(fd.Recv.List) != 1 || !isNamed(pass.TypeOf(fd.Recv.List[0].Type), "obs", "Scope") {
				continue
			}
			if _, isPtr := pass.TypeOf(fd.Recv.List[0].Type).(*types.Pointer); !isPtr {
				continue
			}
			recv := recvObj(info, fd)
			if recv == nil {
				continue // receiver unnamed or _: body cannot touch it
			}
			if firstStmtNilGuard(info, fd.Body, recv) || onlyNilComparisons(info, fd.Body, recv) {
				continue
			}
			pass.Reportf(fd.Name.Pos(),
				"exported method %s on *Scope is not nil-safe; start with `if %s == nil { return ... }` (nil is the disabled telemetry state)",
				fd.Name.Name, recv.Name())
		}
	}
}

func recvObj(info *types.Info, fd *ast.FuncDecl) types.Object {
	names := fd.Recv.List[0].Names
	if len(names) == 0 || names[0].Name == "_" {
		return nil
	}
	return info.Defs[names[0]]
}

// firstStmtNilGuard reports whether the body opens with an if statement
// whose condition contains `recv == nil`.
func firstStmtNilGuard(info *types.Info, body *ast.BlockStmt, recv types.Object) bool {
	if len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(ifs.Cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != token.EQL {
			return true
		}
		if (identIs(info, be.X, recv) && isNilIdent(info, be.Y)) ||
			(identIs(info, be.Y, recv) && isNilIdent(info, be.X)) {
			found = true
		}
		return !found
	})
	return found
}

// onlyNilComparisons reports whether every use of recv in the body is an
// operand of a ==/!= comparison against nil (e.g. `return s != nil`).
func onlyNilComparisons(info *types.Info, body *ast.BlockStmt, recv types.Object) bool {
	ok := true
	walkStack(body, func(n ast.Node, stack []ast.Node) {
		if !ok || !identIs(info, n, recv) {
			return
		}
		parent := stack[len(stack)-1]
		be, isCmp := parent.(*ast.BinaryExpr)
		if !isCmp || (be.Op != token.EQL && be.Op != token.NEQ) ||
			!(isNilIdent(info, be.X) || isNilIdent(info, be.Y)) {
			ok = false
		}
	})
	return ok
}

func identIs(info *types.Info, n ast.Node, obj types.Object) bool {
	id, isIdent := n.(*ast.Ident)
	return isIdent && info.Uses[id] == obj
}

// checkScopeUses flags value-typed obs.Scope declarations and explicit
// dereferences outside the obs package.
func checkScopeUses(pass *Pass) {
	info := pass.Info()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.Field:
				if isValueScopeType(pass, e.Type) {
					pass.Reportf(e.Type.Pos(), "obs.Scope held by value; use *obs.Scope — the nil pointer is the disabled state")
				}
			case *ast.ValueSpec:
				if e.Type != nil && isValueScopeType(pass, e.Type) {
					pass.Reportf(e.Type.Pos(), "obs.Scope declared by value; use *obs.Scope — the nil pointer is the disabled state")
				}
			case *ast.StarExpr:
				tv := info.Types[e.X]
				if tv.IsValue() && isNamed(tv.Type, "obs", "Scope") {
					if _, isPtr := tv.Type.(*types.Pointer); isPtr {
						pass.Reportf(e.Pos(), "dereferencing a *obs.Scope copies the handle and panics when telemetry is disabled (nil scope)")
					}
				}
			}
			return true
		})
	}
}

// isValueScopeType reports whether the type expression denotes the value
// type obs.Scope (not a pointer to it).
func isValueScopeType(pass *Pass, t ast.Expr) bool {
	tv := pass.Info().Types[t]
	if !tv.IsType() {
		return false
	}
	if _, isPtr := tv.Type.(*types.Pointer); isPtr {
		return false
	}
	return isNamed(tv.Type, "obs", "Scope")
}
