package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak flags goroutine spawns whose body can run forever with no
// visible exit discipline. A long-lived daemon accumulates such goroutines
// until the scheduler drowns; every spawn must either terminate or be
// cancellable. A spawn is accepted when any of the recognized disciplines
// is syntactically present in the spawned body (or the spawning function):
//
//   - a context: the body receives or captures a context.Context, or
//     selects on a Done() channel;
//   - a WaitGroup: the body calls wg.Done (typically deferred), pairing
//     the spawn with a wg.Wait elsewhere;
//   - an owned channel: the body ranges over, or receives from, a channel
//     — closing the channel is then the shutdown signal.
//
// Only spawns whose body (transitively, through the call graph) contains
// an unconditional `for {}` loop with no exit are reported: a goroutine
// that provably terminates needs no cancellation.
var GoroLeak = &Analyzer{
	Name:      "goroleak",
	Doc:       "spawned goroutines that can loop forever must have a ctx/Done, WaitGroup, or owned-channel exit",
	SkipTests: true,
	Run:       runGoroLeak,
}

func runGoroLeak(pass *Pass) {
	reportForPackage(pass, goroLeakModule)
}

func goroLeakModule(in *Interp) []Diagnostic {
	g := in.Graph
	fset := g.Prog.Fset
	var diags []Diagnostic
	for _, n := range g.Nodes {
		for _, gs := range n.Spawns {
			d := checkSpawn(in, n, gs, fset)
			if d != nil {
				diags = append(diags, *d)
			}
		}
	}
	return diags
}

// checkSpawn inspects one go statement.
func checkSpawn(in *Interp, spawner *Node, gs GoSite, fset *token.FileSet) *Diagnostic {
	target := gs.Callee
	if target == nil {
		return nil // dynamic spawn target outside the module; nothing to prove
	}
	if !loopsForeverTransitively(in, target, map[*Node]bool{}) {
		return nil
	}
	if spawnHasExitDiscipline(in, spawner, gs) {
		return nil
	}
	return &Diagnostic{
		Check: "goroleak",
		Pos:   fset.Position(gs.Stmt.Pos()),
		Message: fmt.Sprintf(
			"goroutine running %s loops forever with no exit discipline; give it a context/Done channel, a WaitGroup, or an owned channel to range over",
			shortID(target)),
		Severity: SeverityError,
	}
}

// loopsForeverTransitively reports whether n, or any warm non-spawn callee,
// contains an unconditional loop with no exit.
func loopsForeverTransitively(in *Interp, n *Node, seen map[*Node]bool) bool {
	if seen[n] {
		return false
	}
	seen[n] = true
	if s := in.Summaries[n]; s != nil && s.LoopsForever {
		return true
	}
	for _, e := range n.Calls {
		if e.Kind == EdgeGo || e.Cold {
			continue
		}
		if loopsForeverTransitively(in, e.Callee, seen) {
			return true
		}
	}
	return false
}

// spawnHasExitDiscipline looks for an accepted shutdown mechanism in the
// spawned body or its immediate surroundings.
func spawnHasExitDiscipline(in *Interp, spawner *Node, gs GoSite) bool {
	info := spawner.Pkg.Info
	target := gs.Callee

	// Discipline 1: the spawnee (or the call site) handles a context.
	if nodeTouchesContext(info, target) {
		return true
	}
	for _, arg := range gs.Stmt.Call.Args {
		if t := info.TypeOf(arg); t != nil && isContextType(t) {
			return true
		}
	}

	// Discipline 2/3: the spawned body calls a WaitGroup.Done, selects on a
	// Done() channel, or receives from / ranges over a channel. For a
	// FuncLit spawn, also scan the literal's own body even when the graph
	// collapsed it.
	bodies := []*ast.BlockStmt{}
	if b := target.Body(); b != nil {
		bodies = append(bodies, b)
	}
	if lit, ok := ast.Unparen(gs.Stmt.Call.Fun).(*ast.FuncLit); ok && (target.Lit == nil || target.Lit != lit) {
		bodies = append(bodies, lit.Body)
	}
	tinfo := info
	if target.Pkg != nil {
		tinfo = target.Pkg.Info
	}
	for _, b := range bodies {
		if bodyHasExitDiscipline(tinfo, b) {
			return true
		}
	}
	// One hop deep: a worker that immediately delegates (`go w.run()` where
	// run ranges over w.jobs) is disciplined through its callee.
	for _, e := range target.Calls {
		if e.Kind == EdgeGo || e.Cold {
			continue
		}
		cinfo := e.Callee.Pkg.Info
		if nodeTouchesContext(cinfo, e.Callee) {
			return true
		}
		if cb := e.Callee.Body(); cb != nil && bodyHasExitDiscipline(cinfo, cb) {
			return true
		}
	}
	return false
}

// nodeTouchesContext reports whether the function takes a context.Context
// parameter or (for a literal) captures one.
func nodeTouchesContext(info *types.Info, n *Node) bool {
	sig := n.Sig()
	if sig != nil {
		for i := 0; i < sig.Params().Len(); i++ {
			if isContextType(sig.Params().At(i).Type()) {
				return true
			}
		}
	}
	if n.Lit != nil {
		tinfo := info
		if n.Pkg != nil {
			tinfo = n.Pkg.Info
		}
		for _, v := range capturedVars(tinfo, n.Lit) {
			if isContextType(v.Type()) {
				return true
			}
		}
	}
	return false
}

// bodyHasExitDiscipline scans a body (not nested lits) for WaitGroup.Done,
// Done()-channel selects, channel receives, or channel ranges.
func bodyHasExitDiscipline(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(x ast.Node) bool {
		if found {
			return false
		}
		switch e := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			// wg.Done() on a sync.WaitGroup, or ctx.Done().
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if rt := info.TypeOf(sel.X); rt != nil {
					if isNamed(rt, "sync", "WaitGroup") || isContextType(derefType(rt)) {
						found = true
					}
				}
			}
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				found = true // receive: the sender closing the channel ends the loop
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(e.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func derefType(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
