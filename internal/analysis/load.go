package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// LoadConfig describes a tree of packages to load.
type LoadConfig struct {
	// Dir is the root directory scanned for packages.
	Dir string

	// Module is the import-path prefix mapped onto Dir ("soral" for the real
	// module). When empty, import paths are directory paths relative to Dir —
	// the layout used by the analyzer test fixtures under testdata/src.
	Module string
}

// A Package is one loaded, type-checked package.
type Package struct {
	Path      string // import path
	Dir       string // absolute directory
	Name      string // package clause name
	Files     []*ast.File
	FileNames map[*ast.File]string
	IsTest    map[*ast.File]bool // in-package _test.go files
	Types     *types.Package
	Info      *types.Info

	imports []string // intra-root imports, for topological ordering
}

// A Program is a set of packages sharing one file set.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package // sorted by import path
	byPath   map[string]*Package

	// Interprocedural state (call graph, summaries, module-wide finding
	// caches), built lazily by Interp().
	interpOnce sync.Once
	interp     *Interp
}

// Package returns the loaded package with the given import path, or nil.
func (pr *Program) Package(path string) *Package { return pr.byPath[path] }

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod and returns that directory and the declared module path.
func FindModuleRoot(dir string) (root, module string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Load parses and type-checks every package under cfg.Dir. Intra-root
// imports are resolved against the loaded tree in dependency order; all
// other imports (the standard library) go through the stdlib source
// importer. Directories named testdata, vendor, or starting with "." or "_"
// are skipped, mirroring the go tool.
func Load(cfg LoadConfig) (*Program, error) {
	root, err := filepath.Abs(cfg.Dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	pr := &Program{Fset: fset, byPath: map[string]*Package{}}

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		pkg, err := parseDir(fset, dir, importPathFor(cfg, root, dir))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			continue // no buildable Go files
		}
		pr.Packages = append(pr.Packages, pkg)
		pr.byPath[pkg.Path] = pkg
	}
	sort.Slice(pr.Packages, func(i, j int) bool { return pr.Packages[i].Path < pr.Packages[j].Path })

	order, err := topoOrder(pr)
	if err != nil {
		return nil, err
	}
	src := importer.ForCompiler(fset, "source", nil)
	for _, pkg := range order {
		if err := typeCheck(fset, pkg, pr, src); err != nil {
			return nil, err
		}
	}
	return pr, nil
}

// importPathFor maps a package directory to its import path under the config.
func importPathFor(cfg LoadConfig, root, dir string) string {
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		rel = ""
	}
	rel = filepath.ToSlash(rel)
	switch {
	case cfg.Module == "":
		return rel
	case rel == "":
		return cfg.Module
	default:
		return cfg.Module + "/" + rel
	}
}

// packageDirs lists every directory under root that may hold a package.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	return dirs, err
}

// parseDir parses the buildable Go files of one directory into a Package.
// In-package _test.go files are included (and marked); external-test
// ("_test" suffixed) packages are skipped — they cannot be type-checked
// without compiling the package under test twice, and no analyzer needs
// them.
func parseDir(fset *token.FileSet, dir, path string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	type parsed struct {
		name string
		file *ast.File
	}
	var files []parsed
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasPrefix(e.Name(), ".") {
			continue
		}
		fp := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, fp, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", fp, err)
		}
		files = append(files, parsed{name: e.Name(), file: f})
	}
	if len(files) == 0 {
		return nil, nil
	}
	// The package clause of the non-test files names the package; fall back
	// to the first test file's name stripped of _test for test-only dirs.
	pkgName := ""
	for _, p := range files {
		if !strings.HasSuffix(p.name, "_test.go") {
			pkgName = p.file.Name.Name
			break
		}
	}
	if pkgName == "" {
		return nil, nil // test-only directory; nothing buildable to analyze
	}
	pkg := &Package{
		Path:      path,
		Dir:       dir,
		Name:      pkgName,
		FileNames: map[*ast.File]string{},
		IsTest:    map[*ast.File]bool{},
	}
	for _, p := range files {
		if p.file.Name.Name != pkgName {
			continue // external test package or stray clause
		}
		pkg.Files = append(pkg.Files, p.file)
		pkg.FileNames[p.file] = filepath.Join(dir, p.name)
		pkg.IsTest[p.file] = strings.HasSuffix(p.name, "_test.go")
	}
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			pkg.imports = append(pkg.imports, strings.Trim(imp.Path.Value, `"`))
		}
	}
	return pkg, nil
}

// topoOrder sorts packages so every intra-root import precedes its importer.
func topoOrder(pr *Program) ([]*Package, error) {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	state := map[*Package]int{}
	var order []*Package
	var visit func(p *Package, chain []string) error
	visit = func(p *Package, chain []string) error {
		switch state[p] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("analysis: import cycle: %s -> %s", strings.Join(chain, " -> "), p.Path)
		}
		state[p] = visiting
		for _, imp := range p.imports {
			if dep := pr.byPath[imp]; dep != nil {
				if err := visit(dep, append(chain, p.Path)); err != nil {
					return err
				}
			}
		}
		state[p] = done
		order = append(order, p)
		return nil
	}
	for _, p := range pr.Packages {
		if err := visit(p, nil); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// progImporter resolves intra-root imports from the program and delegates
// everything else (the standard library) to the source importer.
type progImporter struct {
	prog     *Program
	fallback types.Importer
}

func (im *progImporter) Import(path string) (*types.Package, error) {
	if p := im.prog.byPath[path]; p != nil {
		if p.Types == nil {
			return nil, fmt.Errorf("analysis: import %q not yet type-checked (cycle?)", path)
		}
		return p.Types, nil
	}
	return im.fallback.Import(path)
}

// typeCheck runs the go/types checker over one package, filling Types/Info.
func typeCheck(fset *token.FileSet, pkg *Package, pr *Program, src types.Importer) error {
	var terrs []error
	conf := types.Config{
		Importer: &progImporter{prog: pr, fallback: src},
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tpkg, err := conf.Check(pkg.Path, fset, pkg.Files, pkg.Info)
	if len(terrs) > 0 {
		msgs := make([]string, 0, len(terrs))
		for i, e := range terrs {
			if i == 8 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(terrs)-i))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return fmt.Errorf("analysis: type-checking %s:\n\t%s", pkg.Path, strings.Join(msgs, "\n\t"))
	}
	if err != nil {
		return fmt.Errorf("analysis: type-checking %s: %w", pkg.Path, err)
	}
	pkg.Types = tpkg
	return nil
}
