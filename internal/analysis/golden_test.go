package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The golden harness loads a fixture tree under testdata/src/<name>, runs
// one analyzer over every package in it, and compares the diagnostics
// against `// want `pattern`` comments: every diagnostic must match a want
// pattern on its own line, and every want pattern must be matched exactly
// once. Patterns are regular expressions applied to "check: message".

var wantPatternRe = regexp.MustCompile("`([^`]+)`")

type lineKey struct {
	file string
	line int
}

type wantEntry struct {
	re      *regexp.Regexp
	matched bool
}

// collectWants scans every fixture comment for want annotations.
func collectWants(t *testing.T, pr *Program) map[lineKey][]*wantEntry {
	t.Helper()
	wants := map[lineKey][]*wantEntry{}
	for _, pkg := range pr.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					idx := strings.Index(c.Text, "// want ")
					if idx < 0 {
						continue
					}
					pos := pr.Fset.Position(c.Pos())
					ms := wantPatternRe.FindAllStringSubmatch(c.Text[idx:], -1)
					if len(ms) == 0 {
						t.Fatalf("%s:%d: want comment without a backquoted pattern", pos.Filename, pos.Line)
					}
					for _, m := range ms {
						re, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
						}
						k := lineKey{pos.Filename, pos.Line}
						wants[k] = append(wants[k], &wantEntry{re: re})
					}
				}
			}
		}
	}
	return wants
}

// loadFixture loads testdata/src/<name> in fixture mode (import paths
// relative to the fixture root, standard library via the source importer).
func loadFixture(t *testing.T, name string) *Program {
	t.Helper()
	pr, err := Load(LoadConfig{Dir: filepath.Join("testdata", "src", name)})
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if len(pr.Packages) == 0 {
		t.Fatalf("fixture %s loaded no packages", name)
	}
	return pr
}

func runGolden(t *testing.T, check string) {
	t.Helper()
	a, ok := ByName(check)
	if !ok {
		t.Fatalf("no analyzer named %q", check)
	}
	pr := loadFixture(t, check)
	wants := collectWants(t, pr)
	known := map[string]bool{}
	for _, reg := range Analyzers() {
		known[reg.Name] = true
	}
	var diags []Diagnostic
	for _, pkg := range pr.Packages {
		pkgDiags := AnalyzePackage(pr, pkg, []*Analyzer{a})
		// Apply suppression directives like a production run, so fixtures
		// can carry justified-ignore cases (which must produce no
		// diagnostic and no want line).
		dirs, _ := ParseDirectives(pr.Fset, pkg, known)
		diags = append(diags, Suppress(pkgDiags, dirs)...)
	}
	for _, d := range diags {
		text := fmt.Sprintf("%s: %s", d.Check, d.Message)
		k := lineKey{d.Pos.Filename, d.Pos.Line}
		found := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(text) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, w.re)
			}
		}
	}
}

func TestFloatCmpGolden(t *testing.T) { runGolden(t, "floatcmp") }
func TestDivGuardGolden(t *testing.T) { runGolden(t, "divguard") }
func TestMapOrderGolden(t *testing.T) { runGolden(t, "maporder") }
func TestCtxFlowGolden(t *testing.T)  { runGolden(t, "ctxflow") }
func TestScopeNilGolden(t *testing.T) { runGolden(t, "scopenil") }
func TestErrDropGolden(t *testing.T)  { runGolden(t, "errdrop") }

func TestSleepRetryGolden(t *testing.T) { runGolden(t, "sleepretry") }

func TestMetricNameGolden(t *testing.T) { runGolden(t, "metricname") }

func TestHotAllocGolden(t *testing.T)  { runGolden(t, "hotalloc") }
func TestLockOrderGolden(t *testing.T) { runGolden(t, "lockorder") }
func TestGoroLeakGolden(t *testing.T)  { runGolden(t, "goroleak") }
func TestNonDetGolden(t *testing.T)    { runGolden(t, "nondet") }

// TestRegistry pins the registry: sorted, unique, documented.
func TestRegistry(t *testing.T) {
	all := Analyzers()
	if len(all) != 12 {
		t.Fatalf("registry has %d analyzers, want 12", len(all))
	}
	seen := map[string]bool{}
	for i, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %d is missing name, doc, or run", i)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if i > 0 && all[i-1].Name >= a.Name {
			t.Errorf("registry out of order: %q before %q", all[i-1].Name, a.Name)
		}
	}
	if _, ok := ByName("floatcmp"); !ok {
		t.Error("ByName failed to resolve floatcmp")
	}
	if _, ok := ByName("nosuch"); ok {
		t.Error("ByName resolved a check that does not exist")
	}
}
