package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A Summary is the per-function effect abstraction the interprocedural
// analyzers consume: a small monotone lattice (booleans and lock-key sets,
// ordered by implication/inclusion) computed bottom-up over the call graph's
// SCC condensation. Within a component the fixed point is the member union,
// so one forward pass over the callee-first component order suffices.
type Summary struct {
	// Allocates: the body contains an allocation-inducing construct
	// (make/new/append, heap composite literal, capturing closure, fmt
	// call, boxing) or calls something that does.
	Allocates bool

	// Blocks: the body can park the goroutine — channel send/receive,
	// select without default, time.Sleep, WaitGroup.Wait, Cond.Wait — or
	// calls something that can. Mutex Lock is deliberately excluded:
	// lock-vs-lock interaction is lockorder's domain, and counting Lock
	// as blocking would flag every nested critical section twice.
	Blocks bool

	// ReadsNondet: the body observes a nondeterministic source — wall
	// clock (time.Now/Since/Until), the global math/rand generator, or
	// map iteration order — or calls something that does. Seeded
	// *rand.Rand methods are NOT sources: rand.New(rand.NewSource(seed))
	// is the repo's deterministic workload idiom.
	ReadsNondet bool

	// ReturnsNondet: a returned value is data-derived from one of those
	// sources (the taint, not just the read). This is what propagates
	// through `x := f()` at call sites of the nondet analyzer.
	ReturnsNondet bool

	// Spawns: the body starts a goroutine, or calls something that does.
	Spawns bool

	// LoopsForever: the body contains an unconditional for-loop with no
	// lexical exit (no return, no break of that loop), or
	// unconditionally calls something that does. A goroutine whose body
	// LoopsForever can never terminate — goroleak's core predicate.
	LoopsForever bool

	// Acquires and Releases are the global lock classes (package-level
	// mutexes and struct mutex fields, keyed like "pkg.Type.mu") the
	// function may lock/unlock, directly or transitively. Function-local
	// mutexes stay out: they cannot participate in cross-function
	// deadlocks.
	Acquires map[string]bool
	Releases map[string]bool
}

// AcquiredKeys returns the acquire set in sorted order.
func (s *Summary) AcquiredKeys() []string {
	keys := make([]string, 0, len(s.Acquires))
	for k := range s.Acquires {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Summaries maps every call-graph node to its computed summary.
type Summaries map[*Node]*Summary

// ComputeSummaries runs the bottom-up pass over g's SCC condensation.
func ComputeSummaries(g *CallGraph) Summaries {
	sums := make(Summaries, len(g.Nodes))
	// Direct (intraprocedural) effects first.
	for _, n := range g.Nodes {
		sums[n] = directEffects(n)
	}
	// Then one pass over the callee-first SCC order: each component's
	// fixed point is the union of member effects plus finalized callee
	// summaries from earlier components.
	for _, comp := range g.SCCs {
		agg := &Summary{Acquires: map[string]bool{}, Releases: map[string]bool{}}
		for _, n := range comp {
			agg.or(sums[n])
			for _, e := range n.Calls {
				callee := sums[e.Callee]
				if e.Callee.scc != n.scc {
					agg.orCallee(callee, e.Kind)
				}
			}
			for _, gs := range n.Spawns {
				agg.Spawns = true
				_ = gs
			}
		}
		for _, n := range comp {
			// Preserve per-node ReturnsNondet and LoopsForever: they are
			// properties of the node's own control flow, refined below.
			rn, lf := sums[n].ReturnsNondet, sums[n].LoopsForever
			*sums[n] = *agg
			sums[n].Acquires = agg.Acquires
			sums[n].Releases = agg.Releases
			sums[n].ReturnsNondet = rn
			sums[n].LoopsForever = lf
		}
		// LoopsForever propagates only through unconditional call sites
		// of component members; approximate with: any member whose body
		// calls a LoopsForever callee anywhere. (Conservative: a guarded
		// call to a forever-loop still usually means the goroutine owns
		// it.)
		for _, n := range comp {
			for _, e := range n.Calls {
				if e.Kind == EdgeGo {
					continue // spawning a forever-loop hands it to a new goroutine
				}
				if sums[e.Callee].LoopsForever {
					sums[n].LoopsForever = true
				}
			}
		}
		// ReturnsNondet needs the callee bits that were just finalized:
		// re-run the cheap return-taint scan with them available.
		for _, n := range comp {
			if !sums[n].ReturnsNondet && returnsTainted(g, n, sums) {
				sums[n].ReturnsNondet = true
			}
		}
	}
	return sums
}

// or unions o into s (booleans and lock sets).
func (s *Summary) or(o *Summary) {
	s.Allocates = s.Allocates || o.Allocates
	s.Blocks = s.Blocks || o.Blocks
	s.ReadsNondet = s.ReadsNondet || o.ReadsNondet
	s.Spawns = s.Spawns || o.Spawns
	for k := range o.Acquires {
		s.Acquires[k] = true
	}
	for k := range o.Releases {
		s.Releases[k] = true
	}
}

// orCallee unions a callee summary through a call edge. Closure edges
// propagate everything (creating a literal means it may run); go edges
// propagate allocation (the spawn itself allocates) but not blocking (the
// parked goroutine is not the caller).
func (s *Summary) orCallee(o *Summary, kind EdgeKind) {
	switch kind {
	case EdgeGo:
		s.Allocates = true
		s.ReadsNondet = s.ReadsNondet || o.ReadsNondet
	default:
		s.or(o)
	}
}

// directEffects computes the intraprocedural summary of one node: only the
// statements of its own body (nested literals are their own nodes).
func directEffects(n *Node) *Summary {
	s := &Summary{Acquires: map[string]bool{}, Releases: map[string]bool{}}
	body := n.Body()
	if body == nil {
		return s
	}
	info := n.Pkg.Info
	walkStack(body, func(x ast.Node, stack []ast.Node) {
		if enclosedByNestedLit(body, stack) {
			return
		}
		switch e := x.(type) {
		case *ast.FuncLit:
			if e != n.Lit && len(capturedVars(info, e)) > 0 {
				s.Allocates = true
			}
		case *ast.SendStmt:
			s.Blocks = true
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				s.Blocks = true
			}
		case *ast.SelectStmt:
			if !selectHasDefault(e) {
				s.Blocks = true
			}
		case *ast.RangeStmt:
			t := info.TypeOf(e.X)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Chan:
					s.Blocks = true
				case *types.Map:
					s.ReadsNondet = true
				}
			}
		case *ast.GoStmt:
			s.Spawns = true
			s.Allocates = true
		case *ast.ForStmt:
			if e.Cond == nil && !loopHasExit(e) {
				s.LoopsForever = true
			}
		case *ast.CallExpr:
			if allocatingConstruct(info, e) != "" {
				s.Allocates = true
			}
			if blockingStdlibCall(info, e) {
				s.Blocks = true
			}
			if nondetSourceCall(info, e) != "" {
				s.ReadsNondet = true
			}
			if key, locks, _ := lockOpKey(info, e); key != "" {
				if locks {
					s.Acquires[key] = true
				} else {
					s.Releases[key] = true
				}
			}
		}
	})
	return s
}

// capturedVars returns the free variables of a literal: identifiers used
// inside it that resolve to objects declared outside it but not at package
// level. A capture-free literal is a static function value and does not
// allocate.
func capturedVars(info *types.Info, lit *ast.FuncLit) []*types.Var {
	var out []*types.Var
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || seen[v] || v.IsField() {
			return true
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level variable, not a capture
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			seen[v] = true
			out = append(out, v)
		}
		return true
	})
	return out
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, c := range s.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// loopHasExit reports whether an unconditional for-loop lexically contains
// an exit: a return statement, a break that targets it, or a goto (assumed
// to leave). Channel operations do not count as exits on their own:
// receiving from a closed channel succeeds forever, so `for { select {
// ... } }` without a return/break is still a forever-loop.
func loopHasExit(loop *ast.ForStmt) bool {
	return stmtsHaveExit(loop.Body.List, true)
}

// stmtsHaveExit walks a statement list structurally (never descending into
// expressions, so nested function literals stay out). breakable reports
// whether a plain `break` at this level exits the loop under test.
func stmtsHaveExit(stmts []ast.Stmt, breakable bool) bool {
	for _, s := range stmts {
		if stmtHasExit(s, breakable) {
			return true
		}
	}
	return false
}

func stmtHasExit(s ast.Stmt, breakable bool) bool {
	switch st := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		switch st.Tok {
		case token.GOTO:
			return true // may jump out; assume it does
		case token.BREAK:
			return breakable || st.Label != nil // labeled break targets an outer loop
		}
	case *ast.LabeledStmt:
		return stmtHasExit(st.Stmt, breakable)
	case *ast.BlockStmt:
		return stmtsHaveExit(st.List, breakable)
	case *ast.IfStmt:
		if stmtsHaveExit(st.Body.List, breakable) {
			return true
		}
		if st.Else != nil {
			return stmtHasExit(st.Else, breakable)
		}
	case *ast.ForStmt:
		return stmtsHaveExit(st.Body.List, false)
	case *ast.RangeStmt:
		return stmtsHaveExit(st.Body.List, false)
	case *ast.SwitchStmt:
		return stmtsHaveExit(st.Body.List, false)
	case *ast.TypeSwitchStmt:
		return stmtsHaveExit(st.Body.List, false)
	case *ast.SelectStmt:
		return stmtsHaveExit(st.Body.List, false)
	case *ast.CaseClause:
		return stmtsHaveExit(st.Body, breakable)
	case *ast.CommClause:
		return stmtsHaveExit(st.Body, breakable)
	}
	return false
}

// allocatingConstruct classifies a call/expression that forces a heap
// allocation, returning a short label ("" when none): the make/new/append
// builtins, fmt calls (boxing plus formatting buffers), and
// string<->[]byte conversions.
func allocatingConstruct(info *types.Info, call *ast.CallExpr) string {
	for _, b := range [...]string{"make", "new", "append"} {
		if isBuiltin(info, call, b) {
			return b
		}
	}
	if f := calleeFunc(info, call); f != nil && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
		return "fmt." + f.Name()
	}
	// Conversion string([]byte) / []byte(string) copies.
	if len(call.Args) == 1 {
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			to := tv.Type
			from := info.TypeOf(call.Args[0])
			if from != nil && isStringByteConv(to, from) {
				return "string/[]byte conversion"
			}
		}
	}
	return ""
}

func isStringByteConv(to, from types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isBytes := func(t types.Type) bool {
		sl, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := sl.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Byte
	}
	return (isStr(to) && isBytes(from)) || (isBytes(to) && isStr(from))
}

// blockingStdlibCall recognizes the stdlib calls that park a goroutine.
func blockingStdlibCall(info *types.Info, call *ast.CallExpr) bool {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil {
		return false
	}
	switch f.Pkg().Path() {
	case "time":
		return f.Name() == "Sleep"
	case "sync":
		if recv := recvNamed(f); recv != "" {
			return (recv == "WaitGroup" && f.Name() == "Wait") ||
				(recv == "Cond" && f.Name() == "Wait")
		}
	}
	return false
}

// nondetSourceCall classifies a call whose result varies run to run,
// returning a short source label ("" when deterministic). Methods on a
// seeded *rand.Rand are excluded — only the global generator and the wall
// clock qualify.
func nondetSourceCall(info *types.Info, call *ast.CallExpr) string {
	f := calleeFunc(info, call)
	if f == nil || f.Pkg() == nil {
		return ""
	}
	switch f.Pkg().Path() {
	case "time":
		switch f.Name() {
		case "Now", "Since", "Until":
			return "time." + f.Name()
		}
	case "math/rand", "math/rand/v2":
		switch f.Name() {
		case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
			// Constructors of explicitly seeded generators are the
			// deterministic path, not a source.
			return ""
		}
		if recvNamed(f) == "" { // package-level = global generator
			return "math/rand." + f.Name()
		}
	case "crypto/rand":
		return "crypto/rand." + f.Name()
	case "os":
		if f.Name() == "Getpid" {
			return "os.Getpid"
		}
	}
	return ""
}

// recvNamed returns the name of a method's receiver type, "" for plain
// functions.
func recvNamed(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// lockOpKey classifies a Lock/RLock/Unlock/RUnlock call on a sync.Mutex or
// sync.RWMutex and returns the global lock-class key, whether the op
// acquires, and the receiver expression. The key is "" for non-lock calls
// AND for function-local mutexes (which cannot deadlock across functions).
func lockOpKey(info *types.Info, call *ast.CallExpr) (key string, locks bool, recv ast.Expr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, nil
	}
	f, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return "", false, nil
	}
	r := recvNamed(f)
	if r != "Mutex" && r != "RWMutex" {
		return "", false, nil
	}
	switch f.Name() {
	case "Lock", "RLock":
		locks = true
	case "Unlock", "RUnlock":
		locks = false
	default:
		return "", false, nil
	}
	return globalLockKey(info, sel.X), locks, sel.X
}

// globalLockKey names the lock class of a mutex expression: "pkg.var" for a
// package-level mutex, "pkg.Type.field" for a struct field (whatever the
// receiver variable), "" for locals.
func globalLockKey(info *types.Info, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, ok := info.Uses[x].(*types.Var)
		if !ok {
			return ""
		}
		if v.Parent() != nil && v.Parent().Parent() == types.Universe && v.Pkg() != nil {
			return lastSegment(v.Pkg().Path()) + "." + v.Name()
		}
		return "" // function-local mutex
	case *ast.SelectorExpr:
		v, ok := info.Uses[x.Sel].(*types.Var)
		if !ok || !v.IsField() {
			// pkg.mu package-level selector
			if ok && v.Pkg() != nil && v.Parent() != nil && v.Parent().Parent() == types.Universe {
				return lastSegment(v.Pkg().Path()) + "." + v.Name()
			}
			return ""
		}
		// Field: key by the owning named struct type.
		base := info.TypeOf(x.X)
		if base == nil {
			return ""
		}
		if p, ok := base.(*types.Pointer); ok {
			base = p.Elem()
		}
		if n, ok := base.(*types.Named); ok && n.Obj().Pkg() != nil {
			return lastSegment(n.Obj().Pkg().Path()) + "." + n.Obj().Name() + "." + v.Name()
		}
		return ""
	}
	return ""
}

// returnsTainted reports whether any return expression of n is data-derived
// from a nondeterminism source, using the function-local taint engine. g
// and sums may be nil during the direct pass (callee bits unknown yet).
func returnsTainted(g *CallGraph, n *Node, sums Summaries) bool {
	body := n.Body()
	if body == nil {
		return false
	}
	var results *ast.FieldList
	if n.Decl != nil {
		results = n.Decl.Type.Results
	} else {
		results = n.Lit.Type.Results
	}
	if results == nil || len(results.List) == 0 {
		return false
	}
	tt := newTaintTracker(g, n, sums)
	tt.propagate()
	tainted := false
	// Named results carry taint through bare returns.
	for _, f := range results.List {
		for _, name := range f.Names {
			if v, ok := n.Pkg.Info.Defs[name].(*types.Var); ok && tt.varTainted(v) {
				tainted = true
			}
		}
	}
	if tainted {
		return true
	}
	ast.Inspect(body, func(x ast.Node) bool {
		if tainted {
			return false
		}
		if lit, ok := x.(*ast.FuncLit); ok && lit != n.Lit {
			return false
		}
		ret, ok := x.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, r := range ret.Results {
			if tt.exprTainted(r) != 0 {
				tainted = true
			}
		}
		return true
	})
	return tainted
}

// nodePackagePath returns a short label for diagnostics ("lp", "core").
func nodePackagePath(n *Node) string { return lastSegment(n.Pkg.Path) }
