package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
)

// metricNameRe is the accepted shape: lowercase dotted snake_case, each
// dot- or underscore-separated segment alphanumeric, starting with a letter
// ("solver.iterations", "journal.feed.dropped_lines"). The Prometheus
// exposition derives its sanitized names from these, so one casing
// convention at the source keeps the scraped families predictable.
var metricNameRe = regexp.MustCompile(`^[a-z][a-z0-9]*([._][a-z0-9]+)*$`)

// metricKinds maps each obs metric-recording (or reading) method to the
// kind of series its name argument selects. A name reused across kinds
// would collide in the exposition (a summary and a histogram both own
// "<name>_sum"/"<name>_count"), so one name must keep one kind.
var metricKinds = map[string]string{
	"Add":           "counter",
	"Count":         "counter",
	"Counter":       "counter",
	"CounterValue":  "counter",
	"SetCounter":    "counter",
	"SetGauge":      "gauge",
	"Observe":       "summary",
	"RecordLatency": "latency",
	"LatencyHist":   "latency",
}

// MetricName enforces the telemetry naming contract on every constant metric
// name passed to the obs.Registry / obs.Scope recording methods: names are
// lowercase dotted snake_case, and a name is registered as exactly one
// metric kind (counter, gauge, summary, latency) per package. Names built
// at runtime (e.g. "latency."+name+".seconds") are out of scope — the
// analyzer only judges what it can constant-fold.
var MetricName = &Analyzer{
	Name:      "metricname",
	Doc:       "metric names must be lowercase dotted snake_case and keep a single metric kind per name",
	SkipTests: true,
	Run:       runMetricName,
}

func runMetricName(pass *Pass) {
	info := pass.Info()
	seen := map[string]string{} // constant metric name -> kind first seen
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			kind, ok := metricKinds[fn.Name()]
			if !ok {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			recv := sig.Recv().Type()
			if !isNamed(recv, "obs", "Registry") && !isNamed(recv, "obs", "Scope") {
				return true
			}
			tv, ok := info.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true // runtime-built name: out of scope
			}
			name := constant.StringVal(tv.Value)
			if !metricNameRe.MatchString(name) {
				pass.Reportf(call.Args[0].Pos(),
					"metric name %q is not lowercase dotted snake_case (want %s)", name, metricNameRe)
			}
			if prev, dup := seen[name]; dup && prev != kind {
				pass.Reportf(call.Args[0].Pos(),
					"metric %q used as a %s here but first registered as a %s; one name must keep one metric kind", name, kind, prev)
			} else if !dup {
				seen[name] = kind
			}
			return true
		})
	}
}
