package analysis

import (
	"sync"
	"time"
)

// Interp is the shared interprocedural state of one analysis run: the
// module call graph, the bottom-up summary store, and per-analyzer caches
// of module-wide diagnostics. The per-package Pass protocol stays — an
// interprocedural analyzer computes its findings once for the whole module
// and each package's pass reports the slice positioned in that package.
type Interp struct {
	Graph     *CallGraph
	Summaries Summaries
	BuildTime time.Duration // call-graph + summary construction wall time

	// fileOwner maps a filename to the package owning it, so module-wide
	// findings can be routed to the pass of the right package.
	fileOwner map[string]*Package

	mu     sync.Mutex
	cached map[string][]Diagnostic // analyzer name -> module-wide findings
}

// Interp returns the program's interprocedural state, building it on first
// use. Safe for the framework's single-goroutine pass loop; the inner cache
// is additionally locked so tests may share a Program.
func (pr *Program) Interp() *Interp {
	pr.interpOnce.Do(func() {
		start := time.Now()
		g := BuildCallGraph(pr)
		sums := ComputeSummaries(g)
		in := &Interp{
			Graph:     g,
			Summaries: sums,
			fileOwner: map[string]*Package{},
			cached:    map[string][]Diagnostic{},
		}
		for _, pkg := range pr.Packages {
			for _, name := range pkg.FileNames {
				in.fileOwner[name] = pkg
			}
		}
		in.BuildTime = time.Since(start)
		pr.interp = in
	})
	return pr.interp
}

// moduleDiags returns the cached module-wide diagnostics of one analyzer,
// computing them on first use.
func (in *Interp) moduleDiags(name string, compute func() []Diagnostic) []Diagnostic {
	in.mu.Lock()
	defer in.mu.Unlock()
	if d, ok := in.cached[name]; ok {
		return d
	}
	d := sortDiagnostics(compute())
	in.cached[name] = d
	return d
}

// reportForPackage runs the module-wide computation (once) and reports the
// findings that live in pass.Pkg's files.
func reportForPackage(pass *Pass, compute func(*Interp) []Diagnostic) {
	in := pass.Prog.Interp()
	diags := in.moduleDiags(pass.Analyzer.Name, func() []Diagnostic { return compute(in) })
	for _, d := range diags {
		if in.fileOwner[d.Pos.Filename] == pass.Pkg {
			pass.report(d)
		}
	}
}
