package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// directivePrefix introduces a suppression comment. Like //go: directives it
// tolerates no space before the verb:
//
//	//sorallint:ignore floatcmp exact sentinel set by the same function
//
// A directive suppresses matching diagnostics on its own line and on the
// line directly below it (so it works both as an end-of-line comment and as
// a standalone comment above the offending statement). The check name must
// be a registered analyzer and the reason is mandatory: a suppression that
// cannot say why it exists is a finding in its own right.
const directivePrefix = "//sorallint:"

// A Directive is one parsed //sorallint:ignore comment.
type Directive struct {
	Check  string
	Reason string
	Pos    token.Position
	used   bool
}

// ParseDirectives scans a package's comments for sorallint directives.
// Malformed directives (missing check, missing reason, unknown verb or
// check name) are returned as unsuppressible diagnostics.
func ParseDirectives(fset *token.FileSet, pkg *Package, known map[string]bool) ([]*Directive, []Diagnostic) {
	var dirs []*Directive
	var problems []Diagnostic
	problem := func(pos token.Pos, format string, args ...any) {
		problems = append(problems, Diagnostic{
			Check:    "sorallint",
			Pos:      fset.Position(pos),
			Message:  fmt.Sprintf(format, args...),
			Severity: SeverityDirective,
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok {
					continue
				}
				verb, args, _ := strings.Cut(rest, " ")
				if verb != "ignore" {
					problem(c.Pos(), "unknown directive %q (only %signore is supported)", verb, directivePrefix)
					continue
				}
				fields := strings.Fields(args)
				if len(fields) == 0 {
					problem(c.Pos(), "bare %signore: a check name and a reason are required", directivePrefix)
					continue
				}
				check := fields[0]
				if !known[check] {
					problem(c.Pos(), "unknown check %q in suppression (known: %s)", check, strings.Join(knownNames(known), ", "))
					continue
				}
				reason := strings.TrimSpace(strings.TrimPrefix(args, check))
				if reason == "" {
					problem(c.Pos(), "suppression of %q has no reason; justify it or fix the finding", check)
					continue
				}
				dirs = append(dirs, &Directive{Check: check, Reason: reason, Pos: fset.Position(c.Pos())})
			}
		}
	}
	return dirs, problems
}

func knownNames(known map[string]bool) []string {
	names := make([]string, 0, len(known))
	for _, a := range Analyzers() {
		if known[a.Name] {
			names = append(names, a.Name)
		}
	}
	return names
}

// Suppress filters diags through the directives: a diagnostic is dropped
// when a directive for its check sits on the same line or the line above in
// the same file. Directive-problem diagnostics (SeverityDirective) are never
// dropped. The returned directives have their used flags updated so callers
// can report unused suppressions.
func Suppress(diags []Diagnostic, dirs []*Directive) []Diagnostic {
	type key struct {
		file  string
		line  int
		check string
	}
	index := map[key]*Directive{}
	for _, d := range dirs {
		index[key{d.Pos.Filename, d.Pos.Line, d.Check}] = d
		index[key{d.Pos.Filename, d.Pos.Line + 1, d.Check}] = d
	}
	kept := diags[:0]
	for _, dg := range diags {
		if dg.Severity != SeverityDirective {
			if d := index[key{dg.Pos.Filename, dg.Pos.Line, dg.Check}]; d != nil {
				d.used = true
				continue
			}
		}
		kept = append(kept, dg)
	}
	return kept
}

// UnusedDirectives reports every directive that suppressed nothing: stale
// suppressions hide the next real finding at that site. The reports are
// warnings — advisory by default, failures under -strict-suppress — and,
// unlike directive syntax problems, they can themselves be suppressed only
// by deleting the stale directive.
func UnusedDirectives(dirs []*Directive) []Diagnostic {
	var out []Diagnostic
	for _, d := range dirs {
		if !d.used {
			out = append(out, Diagnostic{
				Check:    "sorallint",
				Pos:      d.Pos,
				Message:  fmt.Sprintf("unused suppression for %s (reason: %s); remove it", d.Check, d.Reason),
				Severity: SeverityWarning,
			})
		}
	}
	return out
}
