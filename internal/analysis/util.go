package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// lastSegment returns the final element of an import path ("soral/internal/lp"
// -> "lp"). Analyzer package matching keys on it so the same analyzers work
// against the real module and against testdata fixture trees.
func lastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// isFloat reports whether t is a floating-point basic type (including
// untyped float constants).
func isFloat(t types.Type) bool {
	b, ok := t.(*types.Basic)
	if !ok {
		if t == nil {
			return false
		}
		b, ok = t.Underlying().(*types.Basic)
		if !ok {
			return false
		}
	}
	return b.Info()&types.IsFloat != 0
}

// isNamed reports whether t (after unwrapping one pointer level) is the
// named type pkgName.typeName, matching by package *name* rather than full
// path so fixtures can model obs.Scope et al.
func isNamed(t types.Type, pkgName, typeName string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Name() == pkgName && obj.Name() == typeName
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj() != nil && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

// implementsError reports whether t is the error interface or a concrete
// type satisfying it — a `return &SolveError{...}` exits through a typed
// error even though the expression's static type is the pointer, not the
// interface.
func implementsError(t types.Type) bool {
	if t == nil {
		return false
	}
	if isErrorType(t) {
		return true
	}
	return types.Implements(t, types.Universe.Lookup("error").Type().Underlying().(*types.Interface))
}

// walkStack traverses n keeping the ancestor stack; fn receives each node
// with its ancestors (outermost first, excluding the node itself).
func walkStack(n ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(n, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// enclosingFunc returns the outermost function declaration or literal on
// the stack, or nil. Outermost, not innermost: a closure sees its parent's
// locals, so a guard in the parent protects a division inside the closure.
func enclosingFunc(stack []ast.Node) ast.Node {
	for _, n := range stack {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return n
		}
	}
	return nil
}

// rootVars collects the distinct variable objects referenced inside e.
func rootVars(info *types.Info, e ast.Expr) []*types.Var {
	seen := map[*types.Var]bool{}
	var out []*types.Var
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := info.Uses[id].(*types.Var); ok && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
		return true
	})
	return out
}

// usesVar reports whether any identifier inside n resolves to v.
func usesVar(info *types.Info, n ast.Node, v *types.Var) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}

// calleeFunc resolves a call expression to the function or method object it
// invokes, or nil (builtins, function-valued variables, type conversions).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isBuiltin reports whether a call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// isNilIdent reports whether e is the predeclared nil.
func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

// declaredWithin reports whether obj's declaration lies inside [lo, hi].
func declaredWithin(obj types.Object, lo, hi token.Pos) bool {
	return obj != nil && obj.Pos() >= lo && obj.Pos() <= hi
}
