// Package analysis is a from-scratch static-analysis framework for the
// soral solver stack, built only on the standard library (go/ast, go/parser,
// go/types with the source importer — no golang.org/x/tools dependency).
//
// The framework loads and type-checks every package of the module, runs a
// registry of project-specific analyzers over each one, deduplicates the
// diagnostics, and applies `//sorallint:ignore <check> <reason>` suppression
// directives. The analyzers enforce the numerical, determinism, and
// concurrency invariants the paper's guarantees rest on: no raw float
// equality, no unguarded float division, no order-dependent map iteration,
// context propagation through solver entry points, nil-safe *obs.Scope use,
// no dropped factorization/solve errors, and no bare time.Sleep retry loops.
//
// cmd/sorallint is the command-line driver; cmd/soralbench reuses the same
// entry points to track analysis cost alongside solver benchmarks.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer is one named check. Run inspects a single type-checked package
// through the Pass and reports findings via Pass.Report.
type Analyzer struct {
	// Name is the check identifier used in diagnostics and in
	// //sorallint:ignore directives.
	Name string

	// Doc is a one-line description of the invariant the check protects.
	Doc string

	// SkipTests excludes _test.go files from this check.
	SkipTests bool

	// Run inspects one package.
	Run func(*Pass)
}

// A Pass carries one type-checked package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	// Prog is the whole loaded program; the interprocedural analyzers
	// (hotalloc, lockorder, goroleak, nondet) reach the module call graph
	// and summary store through Prog.Interp().
	Prog *Program

	report func(Diagnostic)
}

// Files returns the package's syntax trees, excluding test files when the
// analyzer opts out of them.
func (p *Pass) Files() []*ast.File {
	if !p.Analyzer.SkipTests {
		return p.Pkg.Files
	}
	out := make([]*ast.File, 0, len(p.Pkg.Files))
	for _, f := range p.Pkg.Files {
		if !p.Pkg.IsTest[f] {
			out = append(out, f)
		}
	}
	return out
}

// Info returns the package's type information.
func (p *Pass) Info() *types.Info { return p.Pkg.Info }

// TypeOf returns the type of an expression (nil if untypeable).
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Check:    p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Severity: SeverityError,
	})
}

// Severity classifies a diagnostic. Every analyzer finding is an error (the
// gate exits nonzero); SeverityWarning marks advisory findings — stale
// suppression directives — which only fail the run under -strict-suppress;
// SeverityDirective marks problems with the suppression directives
// themselves, which cannot be suppressed.
type Severity int

const (
	SeverityError Severity = iota
	SeverityWarning
	SeverityDirective
)

// A Diagnostic is one finding, positioned in the file set.
type Diagnostic struct {
	Check    string
	Pos      token.Position
	Message  string
	Severity Severity
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Analyzers returns the full registry in deterministic (alphabetical) order.
func Analyzers() []*Analyzer {
	all := []*Analyzer{
		CtxFlow,
		DivGuard,
		ErrDrop,
		FloatCmp,
		GoroLeak,
		HotAlloc,
		LockOrder,
		MapOrder,
		MetricName,
		NonDet,
		ScopeNil,
		SleepRetry,
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all
}

// ByName resolves a comma-separable check name against the registry.
func ByName(name string) (*Analyzer, bool) {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a, true
		}
	}
	return nil, false
}

// sortDiagnostics orders diagnostics by file, line, column, check, message
// and drops exact duplicates (two analyzers, or one analyzer visiting a node
// twice, may land on the same finding).
func sortDiagnostics(ds []Diagnostic) []Diagnostic {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	out := ds[:0]
	for i, d := range ds {
		if i > 0 && d == ds[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}
