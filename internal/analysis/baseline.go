package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Baseline is a set of accepted pre-existing findings, keyed by
// "check|file|message" with the file path relative to the module root so
// the file survives checkouts at different absolute paths. The value is a
// count: a key occurring N times in the baseline hides the first N
// identical findings and no more, so a regression that duplicates an
// accepted finding still fails the gate.
//
// Line numbers are deliberately not part of the key — a baseline pinned to
// lines goes stale on every unrelated edit above the finding. The
// check+file+message triple is stable under reflow and still tight enough
// that a new finding of the same check in the same file with a different
// message (different identifier, different lock class) is reported.
type Baseline struct {
	// Findings maps "check|file|message" to an accepted occurrence count.
	Findings map[string]int `json:"findings"`
}

// baselineKey builds the lookup key for one diagnostic, relativizing the
// filename against root.
func baselineKey(root string, d Diagnostic) string {
	file := d.Pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return d.Check + "|" + file + "|" + d.Message
}

// LoadBaseline reads a baseline file written by WriteBaseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("analysis: malformed baseline %s: %w", path, err)
	}
	if b.Findings == nil {
		b.Findings = map[string]int{}
	}
	return &b, nil
}

// NewBaseline captures the given diagnostics as a baseline. Directive
// problems and warnings are excluded: a baseline accepts old analyzer
// findings, it must not grandfather broken or stale suppression
// directives.
func NewBaseline(root string, diags []Diagnostic) *Baseline {
	b := &Baseline{Findings: map[string]int{}}
	for _, d := range diags {
		if d.Severity != SeverityError {
			continue
		}
		b.Findings[baselineKey(root, d)]++
	}
	return b
}

// WriteBaseline serializes the baseline with stable key order.
func (b *Baseline) WriteBaseline(path string) error {
	// json.Marshal sorts map keys, so the output is deterministic as-is;
	// indent it for reviewable diffs.
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Apply filters diags through the baseline: for each key, up to the
// accepted count of matching error findings is dropped (in diagnostic sort
// order, so the result is deterministic). It returns the surviving
// diagnostics and the number suppressed by the baseline.
func (b *Baseline) Apply(root string, diags []Diagnostic) (kept []Diagnostic, suppressed int) {
	remaining := make(map[string]int, len(b.Findings))
	for k, v := range b.Findings {
		remaining[k] = v
	}
	kept = make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		if d.Severity == SeverityError {
			k := baselineKey(root, d)
			if remaining[k] > 0 {
				remaining[k]--
				suppressed++
				continue
			}
		}
		kept = append(kept, d)
	}
	return kept, suppressed
}

// Stale returns the baseline keys that matched nothing in the given run —
// fixed findings whose entries should be pruned.
func (b *Baseline) Stale(root string, diags []Diagnostic) []string {
	seen := map[string]int{}
	for _, d := range diags {
		if d.Severity == SeverityError {
			seen[baselineKey(root, d)]++
		}
	}
	var stale []string
	for k, v := range b.Findings {
		if seen[k] < v {
			stale = append(stale, k)
		}
	}
	sort.Strings(stale)
	return stale
}
