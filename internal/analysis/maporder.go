package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags ranging over a map while doing order-sensitive work in the
// body: accumulating into floats declared outside the loop (float addition
// is not associative, so the sum depends on Go's randomized iteration
// order), appending non-key values to an outer slice, or emitting telemetry
// events (obs.Scope / obs.Span methods). Any of these makes two runs of the
// same seed diverge — the determinism killer for the paper's figures. The
// sort-keys idiom (collect only the range key, sort, then iterate the
// slice) is recognized and allowed. Unlike the float checks this one also
// covers _test.go files: order-dependent tests are exactly what
// `go test -shuffle=on` exists to catch.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "no order-dependent accumulation, appends, or trace emission while ranging over a map",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	info := pass.Info()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRangeBody(pass, info, rs)
			return true
		})
	}
}

func checkMapRangeBody(pass *Pass, info *types.Info, rs *ast.RangeStmt) {
	keyObj := rangeKeyObj(info, rs)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.AssignStmt:
			switch e.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range e.Lhs {
					if !isFloat(pass.TypeOf(lhs)) {
						continue
					}
					if v := lhsRootVar(info, lhs); v != nil && !declaredWithin(v, rs.Pos(), rs.End()) {
						pass.Reportf(e.TokPos, "float accumulation into %q inside map iteration is order-dependent; sort the keys first", v.Name())
					}
				}
			}
		case *ast.CallExpr:
			if isBuiltin(info, e, "append") && len(e.Args) >= 2 {
				dst := lhsRootVar(info, e.Args[0])
				if dst == nil || declaredWithin(dst, rs.Pos(), rs.End()) {
					return true
				}
				if appendsOnlyKey(info, e, keyObj) {
					return true // the sort-keys idiom
				}
				pass.Reportf(e.Pos(), "append to %q inside map iteration records map order; collect and sort the keys instead", dst.Name())
				return true
			}
			if sel, ok := ast.Unparen(e.Fun).(*ast.SelectorExpr); ok {
				recv := pass.TypeOf(sel.X)
				if isNamed(recv, "obs", "Scope") || isNamed(recv, "obs", "Span") {
					pass.Reportf(e.Pos(), "telemetry emission inside map iteration makes the trace order-dependent; sort the keys first")
				}
			}
		}
		return true
	})
}

// rangeKeyObj returns the object of the range key variable, if any.
func rangeKeyObj(info *types.Info, rs *ast.RangeStmt) types.Object {
	id, ok := rs.Key.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	return info.Defs[id]
}

// lhsRootVar resolves the base variable of an assignable expression
// (ident, selector chain, index expression).
func lhsRootVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok {
				return v
			}
			if v, ok := info.Defs[x].(*types.Var); ok {
				return v
			}
			return nil
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// appendsOnlyKey reports whether every appended value is exactly the range
// key identifier.
func appendsOnlyKey(info *types.Info, call *ast.CallExpr, keyObj types.Object) bool {
	if keyObj == nil {
		return false
	}
	for _, arg := range call.Args[1:] {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok || info.Uses[id] != keyObj {
			return false
		}
	}
	return true
}
