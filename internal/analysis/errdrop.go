package analysis

import (
	"go/ast"
	"go/types"
)

// errdropPackages are the numerical-kernel packages whose error returns
// must never be dropped: a swallowed factorization or solve failure turns
// into NaNs three layers up, far from the cause.
var errdropPackages = map[string]bool{"linalg": true, "lp": true, "convex": true}

// ErrDrop flags discarded error returns from linalg/lp/convex calls:
// a bare call statement, a call under go/defer, or an assignment that binds
// the error result to the blank identifier.
var ErrDrop = &Analyzer{
	Name:      "errdrop",
	Doc:       "errors from linalg/lp/convex factorization and solve calls must be handled",
	SkipTests: true,
	Run:       runErrDrop,
}

func runErrDrop(pass *Pass) {
	info := pass.Info()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
					checkDroppedCall(pass, info, call, "call statement discards")
				}
			case *ast.GoStmt:
				checkDroppedCall(pass, info, s.Call, "go statement discards")
			case *ast.DeferStmt:
				checkDroppedCall(pass, info, s.Call, "defer statement discards")
			case *ast.AssignStmt:
				checkBlankErrAssign(pass, info, s)
			}
			return true
		})
	}
}

// checkDroppedCall reports a statement-position call into a kernel package
// that returns an error nobody can see.
func checkDroppedCall(pass *Pass, info *types.Info, call *ast.CallExpr, how string) {
	fn, _ := kernelErrCall(info, call)
	if fn == nil {
		return
	}
	pass.Reportf(call.Pos(), "%s the error from %s.%s; handle it or assign and check it",
		how, fn.Pkg().Name(), fn.Name())
}

// checkBlankErrAssign reports `x, _ := pkg.Solve(...)` where the blank slot
// is the call's error result.
func checkBlankErrAssign(pass *Pass, info *types.Info, s *ast.AssignStmt) {
	if len(s.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn, errIdx := kernelErrCall(info, call)
	if fn == nil {
		return
	}
	sig := fn.Type().(*types.Signature)
	if sig.Results().Len() == len(s.Lhs) {
		if id, ok := s.Lhs[errIdx].(*ast.Ident); ok && id.Name == "_" {
			pass.Reportf(id.Pos(), "error from %s.%s assigned to _; factorization/solve failures must be checked",
				fn.Pkg().Name(), fn.Name())
		}
	}
}

// kernelErrCall resolves a call to a function or method defined in one of
// the kernel packages whose signature returns an error; it returns the
// callee and the index of the error result, or (nil, 0).
func kernelErrCall(info *types.Info, call *ast.CallExpr) (*types.Func, int) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || !errdropPackages[lastSegment(fn.Pkg().Path())] {
		return nil, 0
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil, 0
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return fn, i
		}
	}
	return nil, 0
}
