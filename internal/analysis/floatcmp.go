package analysis

import (
	"go/ast"
	"go/token"
)

// FloatCmp flags == and != between floating-point operands. Exact float
// equality silently depends on rounding mode, evaluation order, and
// compiler optimizations; the paper's reproducibility (Figs. 4-10) requires
// epsilon/relative tolerance comparisons. Two idioms stay legal: comparing
// an expression against itself (the NaN test) and fully constant
// comparisons (folded at compile time).
var FloatCmp = &Analyzer{
	Name:      "floatcmp",
	Doc:       "forbid ==/!= on floating-point operands outside tests",
	SkipTests: true,
	Run:       runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	info := pass.Info()
	for _, f := range pass.Files() {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx, ty := pass.TypeOf(be.X), pass.TypeOf(be.Y)
			if !isFloat(tx) && !isFloat(ty) {
				return true
			}
			xv, yv := info.Types[be.X], info.Types[be.Y]
			if xv.Value != nil && yv.Value != nil {
				return true // constant-folded; no runtime float compare
			}
			if sameSimpleExpr(be.X, be.Y) {
				return true // x != x: the canonical NaN check
			}
			pass.Reportf(be.OpPos, "floating-point %s comparison; use an epsilon or relative-tolerance check", be.Op)
			return true
		})
	}
}

// sameSimpleExpr reports whether two expressions are the identical simple
// reference (same identifier chain), covering the x != x NaN idiom and its
// field/index forms like v.X[i] != v.X[i].
func sameSimpleExpr(a, b ast.Expr) bool {
	switch a := ast.Unparen(a).(type) {
	case *ast.Ident:
		b, ok := ast.Unparen(b).(*ast.Ident)
		return ok && a.Name == b.Name
	case *ast.SelectorExpr:
		b, ok := ast.Unparen(b).(*ast.SelectorExpr)
		return ok && a.Sel.Name == b.Sel.Name && sameSimpleExpr(a.X, b.X)
	case *ast.IndexExpr:
		b, ok := ast.Unparen(b).(*ast.IndexExpr)
		return ok && sameSimpleExpr(a.X, b.X) && sameSimpleExpr(a.Index, b.Index)
	case *ast.BasicLit:
		b, ok := ast.Unparen(b).(*ast.BasicLit)
		return ok && a.Kind == b.Kind && a.Value == b.Value
	}
	return false
}
