package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// DivGuard flags floating-point divisions whose denominator is not provably
// guarded. A denominator passes when it is a nonzero constant, is shifted by
// a positive constant (x + eps), is wrapped in math.Max with a positive
// constant floor, or when every variable it references is inspected by a
// comparison or a math.Abs/math.Max/math.Min call somewhere in the enclosing
// function. Everything else is a potential Inf/NaN seed that silently
// poisons downstream accumulations.
var DivGuard = &Analyzer{
	Name:      "divguard",
	Doc:       "float division must have an epsilon/Abs-guarded denominator",
	SkipTests: true,
	Run:       runDivGuard,
}

func runDivGuard(pass *Pass) {
	info := pass.Info()
	fieldGuards := packageFieldGuards(pass)
	for _, f := range pass.Files() {
		walkStack(f, func(n ast.Node, stack []ast.Node) {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || be.Op != token.QUO {
				return
			}
			if !isFloat(pass.TypeOf(be.X)) && !isFloat(pass.TypeOf(be.Y)) {
				return
			}
			den := ast.Unparen(be.Y)
			if denSafe(info, den) {
				return
			}
			fn := enclosingFunc(stack)
			if fn == nil {
				return // package-level constant context; folded or vetted elsewhere
			}
			vars := denomVars(info, den)
			if len(vars) == 0 {
				pass.Reportf(den.Pos(), "float division by unguarded expression; bind the denominator and guard it against zero")
				return
			}
			for _, v := range vars {
				// Struct fields are guarded by their package's validators
				// (Validate, withDefaults); locals must be guarded in the
				// enclosing function.
				if v.IsField() {
					if !fieldGuards[v] {
						pass.Reportf(den.Pos(), "float division by field %q never zero-checked anywhere in this package", v.Name())
						return
					}
					continue
				}
				if !varGuarded(info, fn, v) {
					pass.Reportf(den.Pos(), "float division by %q with no epsilon/Abs guard in the enclosing function", v.Name())
					return
				}
			}
		})
	}
}

// denomVars collects the variables whose value determines the denominator:
// for a selector chain the selected field (not its base), for an index
// expression the indexed container (not the index), otherwise every
// referenced variable.
func denomVars(info *types.Info, den ast.Expr) []*types.Var {
	seen := map[*types.Var]bool{}
	var out []*types.Var
	add := func(v *types.Var) {
		if v != nil && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	var visit func(e ast.Expr)
	visit = func(e ast.Expr) {
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			if v, ok := info.Uses[e].(*types.Var); ok {
				add(v)
			}
		case *ast.SelectorExpr:
			if v, ok := info.Uses[e.Sel].(*types.Var); ok {
				add(v) // the field decides the value; the base does not
				return
			}
			visit(e.X) // method value or qualified name: look deeper
		case *ast.IndexExpr:
			visit(e.X) // the container matters, the index position does not
		case *ast.BinaryExpr:
			visit(e.X)
			visit(e.Y)
		case *ast.UnaryExpr:
			visit(e.X)
		case *ast.StarExpr:
			visit(e.X)
		case *ast.CallExpr:
			for _, a := range e.Args {
				visit(a)
			}
		}
	}
	visit(den)
	return out
}

// packageFieldGuards collects every struct-field object that some function
// in the package inspects with a comparison or a math.Abs/Max/Min call —
// the cross-function validator idiom (Params.Validate, Options.withDefaults).
func packageFieldGuards(pass *Pass) map[*types.Var]bool {
	info := pass.Info()
	guarded := map[*types.Var]bool{}
	mark := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok && v.IsField() {
					guarded[v] = true
				}
			}
			return true
		})
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				switch e.Op {
				case token.LSS, token.GTR, token.LEQ, token.GEQ, token.NEQ, token.EQL:
					mark(e.X)
					mark(e.Y)
				}
			case *ast.CallExpr:
				if fn := calleeFunc(info, e); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "math" {
					switch fn.Name() {
					case "Abs", "Max", "Min":
						for _, arg := range e.Args {
							mark(arg)
						}
					}
				}
			}
			return true
		})
	}
	return guarded
}

// denSafe recognizes denominators that carry their own guard.
func denSafe(info *types.Info, den ast.Expr) bool {
	if tv := info.Types[den]; tv.Value != nil {
		// Nonzero constant. A constant zero denominator is a compile error
		// for typed constants and a vet finding otherwise; don't double-report.
		return constant.Sign(tv.Value) != 0
	}
	switch e := den.(type) {
	case *ast.BinaryExpr:
		// x + c or c + x with constant c > 0: the epsilon-shift idiom.
		if e.Op == token.ADD {
			return positiveConst(info, e.X) || positiveConst(info, e.Y)
		}
	case *ast.CallExpr:
		// math.Max(x, c) with constant floor c > 0.
		if fn := calleeFunc(info, e); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == "math" && fn.Name() == "Max" {
			for _, arg := range e.Args {
				if positiveConst(info, arg) {
					return true
				}
			}
		}
	}
	return false
}

// positiveConst reports whether e is a constant with value > 0.
func positiveConst(info *types.Info, e ast.Expr) bool {
	tv := info.Types[ast.Unparen(e)]
	return tv.Value != nil && constant.Sign(tv.Value) > 0
}

// varGuarded reports whether v is inspected anywhere in fn: used inside a
// relational comparison, passed to math.Abs/math.Max/math.Min, or assigned
// from a self-guarding expression (x := 1 + norm). The whole function body
// counts — the goal is "the author thought about zero here", not a
// dataflow proof.
func varGuarded(info *types.Info, fn ast.Node, v *types.Var) bool {
	guarded := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if guarded {
			return false
		}
		switch e := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range e.Lhs {
				if i >= len(e.Rhs) {
					break
				}
				if id, ok := lhs.(*ast.Ident); ok &&
					(info.Defs[id] == v || info.Uses[id] == v) && denSafe(info, ast.Unparen(e.Rhs[i])) {
					guarded = true
				}
			}
		case *ast.BinaryExpr:
			switch e.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ, token.NEQ, token.EQL:
				if usesVar(info, e.X, v) || usesVar(info, e.Y, v) {
					guarded = true
				}
			}
		case *ast.CallExpr:
			if f := calleeFunc(info, e); f != nil && f.Pkg() != nil && f.Pkg().Path() == "math" {
				switch f.Name() {
				case "Abs", "Max", "Min":
					for _, arg := range e.Args {
						if usesVar(info, arg, v) {
							guarded = true
						}
					}
				}
			}
		}
		return !guarded
	})
	return guarded
}
