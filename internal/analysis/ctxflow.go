package analysis

import (
	"go/ast"
	"go/types"
)

// solverPackages are the packages whose exported entry points must be
// cancelable: a production deployment shedding load needs every solve loop
// to notice a dead client.
var solverPackages = map[string]bool{
	"lp": true, "convex": true, "admm": true, "core": true, "control": true,
}

// servicePackages are the observability packages whose long-running exported
// entry points (Serve*, Replay*, Record*) must take a context: an exposition
// server or a journal replay with no cancellation route cannot be shut down.
// Unlike solver packages they may mint root contexts — eval.DefaultContext
// and the server's shutdown grace period legitimately start from Background.
var servicePackages = map[string]bool{
	"obs": true, "eval": true, "journal": true,
}

// serviceEntryPrefixes are the exported-name prefixes the service rule
// covers.
var serviceEntryPrefixes = []string{"Serve", "Replay", "Record"}

// CtxFlow enforces context plumbing through the solver stack. An exported
// entry point (a function whose name starts with "Solve", or that takes a
// solver Options/Config parameter) must accept a context.Context — either
// directly or via a context field reachable through its Options/Config
// struct (the repo's established pattern is Options.Ctx). Inside solver
// packages, calls to context.Background or context.TODO are flagged: a
// fresh context severs the caller's cancellation instead of propagating it.
var CtxFlow = &Analyzer{
	Name:      "ctxflow",
	Doc:       "solver and service entry points must accept and propagate context.Context",
	SkipTests: true,
	Run:       runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	pkg := lastSegment(pass.Pkg.Path)
	solver, service := solverPackages[pkg], servicePackages[pkg]
	if !solver && !service {
		return
	}
	info := pass.Info()
	for _, f := range pass.Files() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || !fd.Name.IsExported() {
				// Methods are exempt: Solve(x, b) on a factorization is an
				// inner kernel, not an entry point.
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := fn.Type().(*types.Signature)
			switch {
			case solver && isEntryPoint(fd.Name.Name, sig):
				if !acceptsContext(sig) {
					pass.Reportf(fd.Name.Pos(),
						"exported solver entry point %s accepts no context.Context (directly or via an Options/Config ctx field); cancellation cannot reach the solve loop", fd.Name.Name)
				}
			case service && isServiceEntryPoint(fd.Name.Name):
				if !acceptsContext(sig) {
					pass.Reportf(fd.Name.Pos(),
						"exported service entry point %s accepts no context.Context; the server/replay cannot be shut down", fd.Name.Name)
				}
			}
		}
		if !solver {
			// Service packages may mint root contexts (eval.DefaultContext,
			// the server's shutdown grace period); only solver packages are
			// held to strict propagation.
			continue
		}
		// Propagation: a solver package must never mint its own root context.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "context" {
				if fn.Name() == "Background" || fn.Name() == "TODO" {
					pass.Reportf(call.Pos(),
						"context.%s severs the caller's cancellation; propagate the ctx carried by Options/Config instead", fn.Name())
				}
			}
			return true
		})
	}
}

// isServiceEntryPoint reports whether an exported function name falls under
// the service rule (Serve*, Replay*, Record*).
func isServiceEntryPoint(name string) bool {
	for _, p := range serviceEntryPrefixes {
		if len(name) >= len(p) && name[:len(p)] == p {
			return true
		}
	}
	return false
}

// isEntryPoint decides whether an exported function is a solver entry
// point: its name starts with "Solve", or one of its parameters is a named
// Options/Config (possibly pointer) declared in a solver package.
func isEntryPoint(name string, sig *types.Signature) bool {
	if len(name) >= 5 && name[:5] == "Solve" {
		return true
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		t := params.At(i).Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		n, ok := t.(*types.Named)
		if !ok || n.Obj() == nil || n.Obj().Pkg() == nil {
			continue
		}
		tn := n.Obj().Name()
		if (tn == "Options" || tn == "Config") && solverPackages[lastSegment(n.Obj().Pkg().Path())] {
			return true
		}
	}
	return false
}

// acceptsContext reports whether any parameter is a context.Context or a
// struct carrying one (transitively, through nested named struct fields).
func acceptsContext(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if typeCarriesContext(params.At(i).Type(), 3, map[*types.Named]bool{}) {
			return true
		}
	}
	return false
}

func typeCarriesContext(t types.Type, depth int, seen map[*types.Named]bool) bool {
	if isContextType(t) {
		return true
	}
	if depth == 0 {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		if seen[n] {
			return false
		}
		seen[n] = true
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if typeCarriesContext(st.Field(i).Type(), depth-1, seen) {
			return true
		}
	}
	return false
}
