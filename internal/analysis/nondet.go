package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// NonDet tracks determinism taint from wall-clock reads (time.Now/Since/
// Until), the global random generators (math/rand package-level functions,
// crypto/rand), os.Getpid, and map iteration order into the replay-critical
// sinks: journaled records and digests, and committed allocation decisions.
// The run journal exists so that a crashed run replays to the identical
// state digest; any wall-clock or iteration-order dependence in what gets
// journaled breaks replay silently, long after the code merges.
//
// The engine is the shared two-color taint tracker (see taint.go): clock
// taint is never laundered, order taint is cleared by sorting — the same
// sort-keys idiom maporder enforces syntactically. Calls into module
// functions use the interprocedural summaries, so nondeterminism returned
// through helpers is caught too.
//
// Explicitly timestamped fields are expected to carry wall-clock values —
// journal records have WallStart-style fields for humans, excluded from
// digests. Those assignments are exempt by field-name convention
// (Wall*, *Time, *At, Duration*, Elapsed*).
var NonDet = &Analyzer{
	Name:      "nondet",
	Doc:       "no wall-clock, global-rand, or map-order taint may reach journal digests or committed decisions",
	SkipTests: true,
	Run:       runNonDet,
}

func runNonDet(pass *Pass) {
	reportForPackage(pass, nonDetModule)
}

func nonDetModule(in *Interp) []Diagnostic {
	g := in.Graph
	fset := g.Prog.Fset
	var diags []Diagnostic
	for _, n := range g.Nodes {
		if n.Body() == nil {
			continue
		}
		tt := newTaintTracker(g, n, in.Summaries)
		tt.propagate()
		diags = append(diags, scanNondetSinks(tt, fset)...)
	}
	return diags
}

// scanNondetSinks walks the node's body and reports tainted expressions
// flowing into the sinks.
func scanNondetSinks(tt *taintTracker, fset *token.FileSet) []Diagnostic {
	n := tt.n
	body := n.Body()
	info := tt.info
	var diags []Diagnostic
	report := func(pos token.Pos, m taintMask, what, src string) {
		if src == "" {
			src = "a nondeterministic source"
		}
		diags = append(diags, Diagnostic{
			Check: "nondet",
			Pos:   fset.Position(pos),
			Message: fmt.Sprintf("%s value (from %s) flows into %s; derive it from slot state or a seeded generator",
				m.label(), src, what),
			Severity: SeverityError,
		})
	}

	walkStack(body, func(x ast.Node, stack []ast.Node) {
		if enclosedByNestedLit(body, stack) {
			return
		}
		switch e := x.(type) {
		case *ast.CallExpr:
			sink := digestSinkName(info, e)
			if sink == "" {
				break
			}
			for _, arg := range e.Args {
				if m := tt.exprTainted(arg); m != 0 {
					report(arg.Pos(), m, sink, describeSource(tt, arg))
				}
			}
		case *ast.AssignStmt:
			if len(e.Lhs) != len(e.Rhs) {
				break
			}
			for i, lhs := range e.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				recv := info.TypeOf(sel.X)
				if recv == nil || !isDecisionType(recv) {
					continue
				}
				if timestampField(sel.Sel.Name) {
					continue
				}
				if m := tt.exprTainted(e.Rhs[i]); m != 0 {
					report(e.Rhs[i].Pos(), m,
						fmt.Sprintf("committed decision field %s.%s", typeShortName(recv), sel.Sel.Name),
						describeSource(tt, e.Rhs[i]))
				}
			}
		case *ast.CompositeLit:
			t := info.TypeOf(e)
			if t == nil || !isDecisionType(t) {
				break
			}
			for _, el := range e.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				key, ok := kv.Key.(*ast.Ident)
				if !ok || timestampField(key.Name) {
					continue
				}
				if m := tt.exprTainted(kv.Value); m != 0 {
					report(kv.Value.Pos(), m,
						fmt.Sprintf("committed decision field %s.%s", typeShortName(t), key.Name),
						describeSource(tt, kv.Value))
				}
			}
		}
	})
	return diags
}

// digestSinkName names the sink when call is a journal digest entry point:
// any function or method named Digest*/Append* declared in a package named
// "journal", or any function named Digest*/DigestBytes anywhere in the
// module.
func digestSinkName(info *types.Info, call *ast.CallExpr) string {
	f := calleeFunc(info, call)
	if f == nil {
		return ""
	}
	name := f.Name()
	inJournal := f.Pkg() != nil && f.Pkg().Name() == "journal"
	switch {
	case strings.HasPrefix(name, "Digest"):
		return "journal digest " + name
	case inJournal && (strings.HasPrefix(name, "Append") || strings.HasPrefix(name, "Write") || strings.HasPrefix(name, "Record")):
		return "journal entry point journal." + name
	}
	return ""
}

// isDecisionType recognizes the committed-allocation record types: any
// named struct whose name contains "Decision" or "SlotRecord"/"StateRecord"
// (the journaled records replay is reconstructed from).
func isDecisionType(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	name := named.Obj().Name()
	return strings.Contains(name, "Decision") ||
		name == "SlotRecord" || name == "StateRecord"
}

// timestampField reports whether a field is by convention a human-facing
// wall-clock timestamp, excluded from digests and replay comparison.
func timestampField(name string) bool {
	return strings.HasPrefix(name, "Wall") ||
		strings.HasSuffix(name, "Time") ||
		strings.HasSuffix(name, "At") ||
		strings.HasPrefix(name, "Duration") ||
		strings.Contains(name, "Ns") || strings.Contains(name, "NS") ||
		strings.HasPrefix(name, "Elapsed")
}

func typeShortName(t types.Type) string {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}
