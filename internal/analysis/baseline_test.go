package analysis

import (
	"go/token"
	"math/rand"
	"path/filepath"
	"testing"
)

func mkDiag(file string, line, col int, check, msg string, sev Severity) Diagnostic {
	return Diagnostic{
		Check:    check,
		Pos:      token.Position{Filename: file, Line: line, Column: col},
		Message:  msg,
		Severity: sev,
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	root := t.TempDir()
	diags := []Diagnostic{
		mkDiag(filepath.Join(root, "p", "a.go"), 10, 1, "hotalloc", "make allocates", SeverityError),
		mkDiag(filepath.Join(root, "p", "a.go"), 20, 1, "hotalloc", "make allocates", SeverityError),
		mkDiag(filepath.Join(root, "p", "b.go"), 5, 1, "nondet", "tainted", SeverityError),
		mkDiag(filepath.Join(root, "p", "c.go"), 7, 1, "suppress", "stale directive", SeverityWarning),
	}
	b := NewBaseline(root, diags)
	// Warnings are never grandfathered.
	if got := len(b.Findings); got != 2 {
		t.Fatalf("baseline has %d keys, want 2 (two errors share one key): %v", got, b.Findings)
	}
	if b.Findings["hotalloc|p/a.go|make allocates"] != 2 {
		t.Errorf("duplicate finding should be counted twice: %v", b.Findings)
	}

	path := filepath.Join(root, "lint.json")
	if err := b.WriteBaseline(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Findings) != len(b.Findings) {
		t.Fatalf("round trip lost keys: %v vs %v", loaded.Findings, b.Findings)
	}

	kept, suppressed := loaded.Apply(root, diags)
	if suppressed != 3 {
		t.Errorf("Apply suppressed %d, want 3", suppressed)
	}
	if len(kept) != 1 || kept[0].Severity != SeverityWarning {
		t.Errorf("Apply should keep only the warning, kept %v", kept)
	}
}

func TestBaselineCountLimit(t *testing.T) {
	root := t.TempDir()
	one := mkDiag(filepath.Join(root, "a.go"), 3, 1, "hotalloc", "append allocates", SeverityError)
	b := NewBaseline(root, []Diagnostic{one})

	// A second identical finding exceeds the accepted count and survives.
	two := one
	two.Pos.Line = 9
	kept, suppressed := b.Apply(root, []Diagnostic{one, two})
	if suppressed != 1 || len(kept) != 1 {
		t.Fatalf("count-limited Apply: suppressed %d kept %d, want 1 and 1", suppressed, len(kept))
	}
	if kept[0].Pos.Line != 9 {
		t.Errorf("the surviving finding should be the later one in sort order, got line %d", kept[0].Pos.Line)
	}
}

func TestBaselineStale(t *testing.T) {
	root := t.TempDir()
	fixed := mkDiag(filepath.Join(root, "a.go"), 3, 1, "lockorder", "double lock of x", SeverityError)
	live := mkDiag(filepath.Join(root, "b.go"), 4, 1, "nondet", "tainted", SeverityError)
	b := NewBaseline(root, []Diagnostic{fixed, live})

	stale := b.Stale(root, []Diagnostic{live})
	if len(stale) != 1 || stale[0] != "lockorder|a.go|double lock of x" {
		t.Errorf("Stale = %v, want the fixed lockorder entry", stale)
	}
	if s := b.Stale(root, []Diagnostic{fixed, live}); len(s) != 0 {
		t.Errorf("nothing should be stale when every entry matches, got %v", s)
	}
}

// TestSortDiagnosticsShuffle pins the deterministic merged ordering: any
// input permutation sorts to the same sequence, and exact duplicates
// collapse.
func TestSortDiagnosticsShuffle(t *testing.T) {
	base := []Diagnostic{
		mkDiag("a.go", 1, 1, "floatcmp", "m1", SeverityError),
		mkDiag("a.go", 1, 2, "floatcmp", "m2", SeverityError),
		mkDiag("a.go", 2, 1, "divguard", "m3", SeverityError),
		mkDiag("a.go", 2, 1, "floatcmp", "m4", SeverityError),
		mkDiag("a.go", 2, 1, "floatcmp", "m5", SeverityError),
		mkDiag("b.go", 1, 1, "nondet", "m6", SeverityError),
		mkDiag("b.go", 1, 1, "nondet", "m6", SeverityError), // duplicate
	}
	want := sortDiagnostics(append([]Diagnostic(nil), base...))
	if len(want) != len(base)-1 {
		t.Fatalf("duplicate not collapsed: %d results", len(want))
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		shuffled := append([]Diagnostic(nil), base...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		got := sortDiagnostics(shuffled)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: position %d differs: %v vs %v", trial, i, got[i], want[i])
			}
		}
	}
}
