package convex

import (
	"math"
	"math/rand"
	"testing"

	"soral/internal/linalg"
	"soral/internal/lp"
)

// boxConstraints builds G,h for lo ≤ x ≤ hi.
func boxConstraints(lo, hi []float64) (*lp.SparseMatrix, []float64) {
	n := len(lo)
	g := lp.NewSparseMatrix(2*n, n)
	h := make([]float64, 2*n)
	for i := 0; i < n; i++ {
		g.Append(i, i, 1) // x ≤ hi
		h[i] = hi[i]
		g.Append(n+i, i, -1) // −x ≤ −lo
		h[n+i] = -lo[i]
	}
	return g, h
}

func TestFindStrictlyFeasible(t *testing.T) {
	g := lp.NewSparseMatrix(2, 1)
	g.Append(0, 0, 1)  // x ≤ 4
	g.Append(1, 0, -1) // −x ≤ −1, i.e., x ≥ 1
	h := []float64{4, -1}
	x, err := FindStrictlyFeasible(g, h)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] <= 1 || x[0] >= 4 {
		t.Fatalf("x = %v not strictly inside [1,4]", x[0])
	}
}

func TestFindStrictlyFeasibleInfeasible(t *testing.T) {
	g := lp.NewSparseMatrix(2, 1)
	g.Append(0, 0, 1)  // x ≤ 0
	g.Append(1, 0, -1) // x ≥ 1
	h := []float64{0, -1}
	if _, err := FindStrictlyFeasible(g, h); err == nil {
		t.Fatal("expected infeasibility")
	}
}

func TestBarrierQuadraticBoxMin(t *testing.T) {
	// min (x−3)² over [0,10] → x=3. f = ½·2x² −6x + const.
	g, h := boxConstraints([]float64{0}, []float64{10})
	obj := &QuadObjective{DiagQ: []float64{2}, C: []float64{-6}}
	res, err := Solve(&Problem{Obj: obj, G: g, H: h}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-3) > 1e-4 {
		t.Fatalf("x = %v, want 3", res.X[0])
	}
	if !res.Converged {
		t.Fatal("not converged")
	}
}

func TestBarrierQuadraticActiveBound(t *testing.T) {
	// min (x−12)² over [0,10] → x=10 (bound active).
	g, h := boxConstraints([]float64{0}, []float64{10})
	obj := &QuadObjective{DiagQ: []float64{2}, C: []float64{-24}}
	res, err := Solve(&Problem{Obj: obj, G: g, H: h}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-10) > 1e-3 {
		t.Fatalf("x = %v, want 10", res.X[0])
	}
}

func TestBarrierLPMatchesSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(4)
		// Random bounded LP in barrier form: box + a couple of covering rows.
		lo := make([]float64, n)
		hi := make([]float64, n)
		c := make([]float64, n)
		for i := range hi {
			hi[i] = 2 + rng.Float64()*6
			c[i] = rng.Float64()*3 + 0.1
		}
		g, h := boxConstraints(lo, hi)
		// Add covering row: −Σ aᵢxᵢ ≤ −rhs.
		gp := lp.NewProblem(n)
		copy(gp.C, c)
		for i := range hi {
			gp.Hi[i] = hi[i]
		}
		rows := 1 + rng.Intn(2)
		base := g.M
		g2 := lp.NewSparseMatrix(base+rows, n)
		for r, row := range g.Rows {
			for _, e := range row {
				g2.Append(r, e.Index, e.Val)
			}
		}
		h2 := append([]float64(nil), h...)
		for r := 0; r < rows; r++ {
			var es []lp.Entry
			var maxLHS float64
			for i := 0; i < n; i++ {
				v := rng.Float64() + 0.2
				es = append(es, lp.Entry{Index: i, Val: v})
				maxLHS += v * hi[i]
			}
			rhs := rng.Float64() * 0.7 * maxLHS
			for _, e := range es {
				g2.Append(base+r, e.Index, -e.Val)
			}
			h2 = append(h2, -rhs)
			gp.AddConstraint(es, lp.GE, rhs, "")
		}
		res, err := Solve(&Problem{Obj: &LinearObjective{C: c}, G: g2, H: h2}, nil, Options{Tol: 1e-8})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		spx, err := lp.SolveSimplex(gp, lp.Options{})
		if err != nil || spx.Status != lp.Optimal {
			t.Fatalf("trial %d: simplex %v %v", trial, spx, err)
		}
		if math.Abs(res.Obj-spx.Obj) > 1e-3*(1+math.Abs(spx.Obj)) {
			t.Fatalf("trial %d: barrier %v vs simplex %v", trial, res.Obj, spx.Obj)
		}
	}
}

// entropyObjective is f(x) = Σ (xᵢ+ε)ln((xᵢ+ε)/(pᵢ+ε)) − xᵢ, the paper's
// regularizer, with known unconstrained minimizer x = p.
type entropyObjective struct {
	p   []float64
	eps float64
}

func (o *entropyObjective) Value(x []float64) float64 {
	var v float64
	for i, xi := range x {
		v += (xi+o.eps)*math.Log((xi+o.eps)/(o.p[i]+o.eps)) - xi
	}
	return v
}

func (o *entropyObjective) Gradient(grad, x []float64) {
	for i, xi := range x {
		grad[i] = math.Log((xi + o.eps) / (o.p[i] + o.eps))
	}
}

func (o *entropyObjective) Hessian(hess *linalg.Dense, x []float64) {
	hess.Zero()
	for i, xi := range x {
		hess.Set(i, i, 1/(xi+o.eps))
	}
}

func TestBarrierEntropicObjective(t *testing.T) {
	// The regularizer alone is minimized at x = p (interior of the box).
	p := []float64{1, 2, 0.5}
	g, h := boxConstraints([]float64{0, 0, 0}, []float64{10, 10, 10})
	obj := &entropyObjective{p: p, eps: 0.01}
	res, err := Solve(&Problem{Obj: obj, G: g, H: h}, nil, Options{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range p {
		if math.Abs(res.X[i]-p[i]) > 1e-3 {
			t.Fatalf("x[%d] = %v, want %v", i, res.X[i], p[i])
		}
	}
}

func TestBarrierEntropicWithCovering(t *testing.T) {
	// min Σ a·x + entropy-to-prev subject to x ≥ λ: when λ > decay point the
	// constraint binds. Single variable: a·x + (b/η)((x+ε)ln((x+ε)/(p+ε))−x), x≥λ.
	a, b, eps, prev, lam, cap := 1.0, 5.0, 0.01, 0.0, 3.0, 10.0
	eta := math.Log(1 + cap/eps)
	obj := &scaledEntropyPlusLinear{a: a, bOverEta: b / eta, eps: eps, prev: prev}
	g := lp.NewSparseMatrix(2, 1)
	g.Append(0, 0, 1) // x ≤ cap
	g.Append(1, 0, -1)
	h := []float64{cap, -lam}
	res, err := Solve(&Problem{Obj: obj, G: g, H: h}, nil, Options{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	// Unconstrained minimizer from eq. (6): (1+C/ε)^{−a/b}(prev+ε) − ε < 0 here,
	// so the covering constraint must bind: x* = λ.
	if math.Abs(res.X[0]-lam) > 1e-3 {
		t.Fatalf("x = %v, want %v", res.X[0], lam)
	}
}

type scaledEntropyPlusLinear struct {
	a, bOverEta, eps, prev float64
}

func (o *scaledEntropyPlusLinear) Value(x []float64) float64 {
	xi := x[0]
	return o.a*xi + o.bOverEta*((xi+o.eps)*math.Log((xi+o.eps)/(o.prev+o.eps))-xi)
}

func (o *scaledEntropyPlusLinear) Gradient(grad, x []float64) {
	grad[0] = o.a + o.bOverEta*math.Log((x[0]+o.eps)/(o.prev+o.eps))
}

func (o *scaledEntropyPlusLinear) Hessian(hess *linalg.Dense, x []float64) {
	hess.Zero()
	hess.Set(0, 0, o.bOverEta/(x[0]+o.eps))
}

func TestBarrierDualsSignAndComplementarity(t *testing.T) {
	// Active constraint gets a positive dual; inactive ones vanish.
	g, h := boxConstraints([]float64{0}, []float64{10})
	obj := &QuadObjective{DiagQ: []float64{2}, C: []float64{-24}} // min at 12, clipped at 10
	res, err := Solve(&Problem{Obj: obj, G: g, H: h}, nil, Options{Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Duals[0] < 1e-3 {
		t.Fatalf("active dual = %v, want > 0", res.Duals[0])
	}
	if res.Duals[1] > 1e-3 {
		t.Fatalf("inactive dual = %v, want ≈ 0", res.Duals[1])
	}
}

func TestSolveRejectsBadDims(t *testing.T) {
	g := lp.NewSparseMatrix(2, 1)
	if _, err := Solve(&Problem{Obj: &LinearObjective{C: []float64{1}}, G: g, H: []float64{1}}, nil, Options{}); err == nil {
		t.Fatal("expected dimension error")
	}
}

func TestSolveUsesProvidedStrictPoint(t *testing.T) {
	g, h := boxConstraints([]float64{0}, []float64{10})
	obj := &QuadObjective{DiagQ: []float64{2}, C: []float64{-6}}
	res, err := Solve(&Problem{Obj: obj, G: g, H: h}, []float64{5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-3) > 1e-4 {
		t.Fatalf("x = %v", res.X[0])
	}
}

func TestQuadObjectiveFullMatrix(t *testing.T) {
	// f = ½ xᵀQx + cᵀx with Q = [[2,1],[1,2]]; unconstrained min solves Qx=−c.
	q := linalg.NewDenseFrom(2, 2, []float64{2, 1, 1, 2})
	c := []float64{-3, -3}
	g, h := boxConstraints([]float64{-10, -10}, []float64{10, 10})
	res, err := Solve(&Problem{Obj: &QuadObjective{Q: q, C: c}, G: g, H: h}, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Qx = [3,3] → x = [1,1].
	for i := range res.X {
		if math.Abs(res.X[i]-1) > 1e-4 {
			t.Fatalf("x = %v, want [1,1]", res.X)
		}
	}
	// Objective value check: ½[1,1]Q[1,1]ᵀ −6 = 3 − 6 = −3.
	if math.Abs(res.Obj+3) > 1e-4 {
		t.Fatalf("obj = %v, want −3", res.Obj)
	}
}
