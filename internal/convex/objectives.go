package convex

import (
	"math"

	"soral/internal/linalg"
)

// LinearObjective is f(x) = cᵀx. It turns the barrier solver into an LP
// solver, used for cross-checks against package lp.
type LinearObjective struct {
	C []float64
}

// Value implements Objective.
func (o *LinearObjective) Value(x []float64) float64 { return linalg.Dot(o.C, x) }

// Gradient implements Objective.
func (o *LinearObjective) Gradient(grad, x []float64) { copy(grad, o.C) }

// Hessian implements Objective.
func (o *LinearObjective) Hessian(hess *linalg.Dense, x []float64) { hess.Zero() }

// QuadObjective is f(x) = ½·xᵀQx + cᵀx with Q symmetric positive
// semidefinite; Q may be nil for a pure linear objective. A diagonal-only
// quadratic can be given through DiagQ instead of Q.
type QuadObjective struct {
	Q     *linalg.Dense
	DiagQ []float64
	C     []float64
}

// Value implements Objective.
func (o *QuadObjective) Value(x []float64) float64 {
	v := linalg.Dot(o.C, x)
	if o.Q != nil {
		qx := make([]float64, len(x))
		o.Q.MulVec(qx, x)
		v += 0.5 * linalg.Dot(x, qx)
	}
	for i, d := range o.DiagQ {
		v += 0.5 * d * x[i] * x[i]
	}
	return v
}

// Gradient implements Objective.
func (o *QuadObjective) Gradient(grad, x []float64) {
	if o.Q != nil {
		o.Q.MulVec(grad, x)
	} else {
		linalg.Fill(grad, 0)
	}
	for i, d := range o.DiagQ {
		grad[i] += d * x[i]
	}
	linalg.Axpy(1, o.C, grad)
}

// Hessian implements Objective.
func (o *QuadObjective) Hessian(hess *linalg.Dense, x []float64) {
	if o.Q != nil {
		copy(hess.Data, o.Q.Data)
	} else {
		hess.Zero()
	}
	for i, d := range o.DiagQ {
		hess.Add(i, i, d)
	}
}

// EntGroup is one entropic movement penalty
//
//	Coef · ( (S+Eps)·ln((S+Eps)/(Prev+Eps)) − S ),   S = Σ_{k∈Members} x_k,
//
// over a group of decision variables. It is the regularizer at the heart of
// the paper's online algorithm: Coef is the reconfiguration price divided by
// η = ln(1+cap/ε), and Prev the previous slot's group total.
type EntGroup struct {
	Members []int
	Coef    float64
	Eps     float64
	Prev    float64
}

func (g *EntGroup) sum(x []float64) float64 {
	var s float64
	for _, k := range g.Members {
		s += x[k]
	}
	return s
}

// Entropic is a convex objective combining linear allocation costs with
// entropic movement penalties over variable groups. It implements Objective
// and is shared by the two-tier (package core) and N-tier (package ntier)
// regularized subproblems.
type Entropic struct {
	Linear []float64
	Groups []EntGroup
}

// entDenFloor floors the entropic denominators (Prev+Eps, sum+Eps). A
// correctly populated group keeps them well above it; a mis-populated one
// degrades to a huge-but-finite penalty instead of seeding Inf/NaN.
const entDenFloor = 1e-12

// Value implements Objective.
func (o *Entropic) Value(x []float64) float64 {
	v := linalg.Dot(o.Linear, x)
	for i := range o.Groups {
		g := &o.Groups[i]
		//sorallint:ignore floatcmp Coef = 0 encodes a disabled penalty group; the skip is exact by contract
		if g.Coef == 0 {
			continue
		}
		s := g.sum(x)
		v += g.Coef * ((s+g.Eps)*math.Log((s+g.Eps)/math.Max(g.Prev+g.Eps, entDenFloor)) - s)
	}
	return v
}

// Gradient implements Objective.
func (o *Entropic) Gradient(grad, x []float64) {
	copy(grad, o.Linear)
	for i := range o.Groups {
		g := &o.Groups[i]
		//sorallint:ignore floatcmp Coef = 0 encodes a disabled penalty group; the skip is exact by contract
		if g.Coef == 0 {
			continue
		}
		s := g.sum(x)
		d := g.Coef * math.Log((s+g.Eps)/math.Max(g.Prev+g.Eps, entDenFloor))
		for _, k := range g.Members {
			grad[k] += d
		}
	}
}

// Hessian implements Objective.
func (o *Entropic) Hessian(hess *linalg.Dense, x []float64) {
	hess.Zero()
	for i := range o.Groups {
		g := &o.Groups[i]
		//sorallint:ignore floatcmp Coef = 0 encodes a disabled penalty group; the skip is exact by contract
		if g.Coef == 0 {
			continue
		}
		s := g.sum(x)
		w := g.Coef / math.Max(s+g.Eps, entDenFloor)
		for _, k1 := range g.Members {
			row := hess.Row(k1)
			for _, k2 := range g.Members {
				row[k2] += w
			}
		}
	}
}
