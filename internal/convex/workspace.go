package convex

import (
	"soral/internal/linalg"
)

// Workspace owns the barrier solver's per-iteration buffers: gradient and
// search-direction vectors, the constraint slacks, the dense Newton Hessian,
// and its Cholesky factor. A solve that carries a Workspace (Options.Work)
// performs no per-Newton-iteration allocation, and repeated solves of
// same-shaped problems — the online algorithm's slot-after-slot P2 solves —
// reuse every buffer. A Workspace must not be shared by concurrent solves.
type Workspace struct {
	n, m int

	grad, fullGrad, dx, xTrial []float64 // n-sized
	slack                      []float64 // m-sized

	hess *linalg.Dense
	chol *linalg.Cholesky
}

// NewWorkspace returns an empty workspace; buffers are sized on first use.
func NewWorkspace() *Workspace { return &Workspace{} }

// ensure sizes every buffer for n variables and m constraint rows, reusing
// existing allocations whenever they are already big enough.
func (w *Workspace) ensure(n, m int) {
	if w.n < n {
		w.grad = make([]float64, n)
		w.fullGrad = make([]float64, n)
		w.dx = make([]float64, n)
		w.xTrial = make([]float64, n)
	}
	if w.m < m {
		w.slack = make([]float64, m)
	}
	if w.hess == nil || w.hess.Rows != n || w.hess.Cols != n {
		w.hess = linalg.NewDense(n, n)
	}
	if w.chol == nil {
		w.chol = &linalg.Cholesky{}
	}
	w.n, w.m = n, m
}
