// Package convex implements a log-barrier interior-point solver for smooth
// convex objectives under sparse linear inequality constraints G·x ≤ h.
//
// This is the engine behind the paper's regularized subproblem P2(t), whose
// objective mixes linear allocation costs with the entropic regularizer
// (u+ε)·ln((u+ε)/(uprev+ε)) − u. The solver only needs the objective's value,
// gradient, and Hessian through the Objective interface, so the same engine
// also solves the quadratic subproblems of the ADMM offline solver and plain
// LPs (used for cross-checks against package lp).
//
// A strictly feasible starting point is computed with a phase-I linear
// program when the caller does not supply one.
package convex

import (
	"context"
	"errors"
	"fmt"
	"math"

	"soral/internal/linalg"
	"soral/internal/lp"
	"soral/internal/obs"
	"soral/internal/resilience"
)

// Objective is a smooth convex function of x.
type Objective interface {
	// Value returns f(x).
	Value(x []float64) float64
	// Gradient writes ∇f(x) into grad.
	Gradient(grad, x []float64)
	// Hessian writes ∇²f(x) into hess, overwriting its contents.
	Hessian(hess *linalg.Dense, x []float64)
}

// Problem is: minimize Obj(x) subject to G·x ≤ H.
type Problem struct {
	Obj Objective
	G   *lp.SparseMatrix
	H   []float64
}

// Options tunes the barrier method.
type Options struct {
	Tol       float64 // duality-gap tolerance (default 1e-7)
	TInit     float64 // initial barrier weight (default 1)
	Mu        float64 // barrier growth factor (default 20)
	MaxNewton int     // Newton iterations per centering step (default 80)
	MaxOuter  int     // barrier stages (default 60)

	// Ctx, when non-nil, is checked at every Newton iteration; an expired
	// deadline or cancellation aborts the solve with a typed
	// resilience.SolveError (class ClassCanceled).
	Ctx context.Context

	// Fault, when non-nil, injects deterministic failures for resilience
	// testing (see resilience.FaultPlan). Production callers leave it nil.
	Fault *resilience.FaultPlan

	// Obs, when non-nil, receives one iteration event per Newton step (barrier
	// stage, squared decrement, accepted step size). A nil scope costs one
	// branch per iteration.
	Obs *obs.Scope

	// Workers bounds the goroutines of the Newton-system Cholesky
	// factorization, matching lp.Options.Workers semantics (≤ 0 means
	// GOMAXPROCS, 1 means serial). Results are bit-identical for every
	// worker count (DESIGN.md §8).
	Workers int

	// Work, when non-nil, supplies reusable solver buffers so repeated
	// solves of same-shaped problems allocate nothing per Newton iteration
	// (see Workspace). A workspace must not be shared by concurrent solves.
	Work *Workspace
}

func (o Options) withDefaults() Options {
	if o.Tol <= 0 {
		o.Tol = 1e-7
	}
	if o.TInit <= 0 {
		o.TInit = 1
	}
	if o.Mu <= 1 {
		o.Mu = 20
	}
	if o.MaxNewton <= 0 {
		o.MaxNewton = 80
	}
	if o.MaxOuter <= 0 {
		o.MaxOuter = 60
	}
	return o
}

// Result is the outcome of a solve.
type Result struct {
	X           []float64
	Obj         float64
	Duals       []float64 // one multiplier estimate per constraint row
	NewtonIters int
	Converged   bool
}

// ErrInfeasible indicates phase I could not find a strictly feasible point.
var ErrInfeasible = errors.New("convex: no strictly feasible point")

// FindStrictlyFeasible solves the phase-I LP
//
//	minimize s  subject to  G·x − s·1 ≤ h,  x free, s free
//
// and returns an x with G·x < h when one exists.
func FindStrictlyFeasible(g *lp.SparseMatrix, h []float64) ([]float64, error) {
	n := g.N
	p := lp.NewProblem(n + 1)
	for i := 0; i < n; i++ {
		p.Lo[i] = math.Inf(-1)
	}
	p.Lo[n] = math.Inf(-1)
	p.C[n] = 1
	for r, row := range g.Rows {
		entries := make([]lp.Entry, 0, len(row)+1)
		entries = append(entries, row...)
		entries = append(entries, lp.Entry{Index: n, Val: -1})
		p.AddConstraint(entries, lp.LE, h[r], "")
	}
	sol, err := lp.Solve(p, lp.Options{Tol: 1e-9})
	if err != nil {
		return nil, err
	}
	if sol.Status != lp.Optimal && sol.Status != lp.Unbounded {
		return nil, fmt.Errorf("%w (phase-I status %v)", ErrInfeasible, sol.Status)
	}
	x := sol.X[:n]
	// Verify strictness.
	slackMin := math.Inf(1)
	gx := make([]float64, g.M)
	g.MulVec(gx, x)
	for r := range gx {
		if s := h[r] - gx[r]; s < slackMin {
			slackMin = s
		}
	}
	if slackMin <= 0 {
		return nil, fmt.Errorf("%w (best slack %g)", ErrInfeasible, slackMin)
	}
	return linalg.Clone(x), nil
}

// Solve minimizes the problem with the barrier method. If x0 is nil or not
// strictly feasible, phase I is run first. Runtime panics from the linear
// algebra are converted into typed resilience.SolveError values.
func Solve(p *Problem, x0 []float64, opts Options) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = resilience.FromPanic("convex.barrier", r)
		}
	}()
	opts = opts.withDefaults()
	n := p.G.N
	m := p.G.M
	if len(p.H) != m {
		return nil, fmt.Errorf("convex: %d constraint rows but %d right-hand sides", m, len(p.H))
	}
	x := linalg.Clone(x0)
	if x0 == nil || len(x0) != n || !comfortablyFeasible(p.G, p.H, x0) {
		var err error
		x, err = FindStrictlyFeasible(p.G, p.H)
		if err != nil {
			return nil, err
		}
	}

	ws := opts.Work
	if ws == nil {
		ws = NewWorkspace()
	}
	ws.ensure(n, m)
	grad := ws.grad[:n]
	fullGrad := ws.fullGrad[:n]
	slack := ws.slack[:m]
	dx := ws.dx[:n]
	xTrial := ws.xTrial[:n]
	hess := ws.hess

	res = &Result{}
	// The fault plan can cap the total Newton budget to force an
	// iteration-limit exit; organically the outer/inner loop bounds are the
	// only budget.
	budget := opts.Fault.Budget(opts.MaxOuter * opts.MaxNewton)
	budgetInjected := budget < opts.MaxOuter*opts.MaxNewton
	condEst := 0.0
	t := opts.TInit
	for outer := 0; outer < opts.MaxOuter; outer++ {
		// Centering: Newton on t·f(x) − Σ ln(h − Gx).
		for newton := 0; newton < opts.MaxNewton; newton++ {
			iter := res.NewtonIters
			res.NewtonIters++
			if cerr := resilience.Interrupted(opts.Ctx, "convex.barrier", iter); cerr != nil {
				return nil, cerr
			}
			opts.Fault.MaybePanic(iter)
			if opts.Fault.NaNShouldInject(iter) {
				x[0] = math.NaN()
			}
			if !linalg.AllFinite(x) {
				return nil, &resilience.SolveError{
					Stage: "convex.barrier", Class: resilience.ClassNonFinite,
					Iters: iter, CondEst: condEst,
					Err: errors.New("non-finite iterate"),
				}
			}
			if budgetInjected && res.NewtonIters > budget {
				return nil, &resilience.SolveError{
					Stage: "convex.barrier", Class: resilience.ClassIterationLimit,
					Iters: iter, CondEst: condEst,
					Err: fmt.Errorf("Newton budget exhausted: %w", resilience.ErrInjected),
				}
			}
			computeSlack(p.G, p.H, x, slack)
			p.Obj.Gradient(grad, x)
			p.Obj.Hessian(hess, x)
			for i := range fullGrad {
				fullGrad[i] = t * grad[i]
			}
			for i := range hess.Data {
				hess.Data[i] *= t
			}
			// Barrier gradient and Hessian: Gᵀ(1/s) and Gᵀ diag(1/s²) G.
			for r, row := range p.G.Rows {
				//sorallint:ignore divguard barrier invariant: slack stays strictly positive (line search only accepts strictly feasible iterates)
				inv := 1 / slack[r]
				for _, e := range row {
					fullGrad[e.Index] += inv * e.Val
				}
				w := inv * inv
				for _, ei := range row {
					hrow := hess.Row(ei.Index)
					for _, ej := range row {
						hrow[ej.Index] += w * ei.Val * ej.Val
					}
				}
			}
			chol := ws.chol
			var cherr error
			fspan := opts.Obs.StartSpan("convex.factorize")
			if opts.Fault.FactorizationShouldFail(iter) {
				cherr = fmt.Errorf("forced factorization failure: %w", resilience.ErrInjected)
			} else {
				cherr = chol.RefactorizeWorkers(hess, 1e-6*maxAbsDiag(hess)+1e-12, opts.Workers)
			}
			fspan.End()
			if cherr != nil {
				return nil, &resilience.SolveError{
					Stage: "convex.barrier", Class: resilience.ClassFactorization,
					Iters: iter, CondEst: condEst,
					Err: fmt.Errorf("Newton system: %w", cherr),
				}
			}
			condEst = chol.ConditionEstimate()
			chol.Solve(dx, fullGrad)
			linalg.Scale(-1, dx)
			lambda2 := -linalg.Dot(fullGrad, dx) // Newton decrement squared
			if lambda2/2 <= 1e-12 {
				opts.Obs.Iteration("convex.newton", iter, obs.IterStats{
					Stage: outer, Decrement: lambda2,
				})
				break
			}
			// Backtracking line search maintaining strict feasibility.
			step := 1.0
			phi0 := t*p.Obj.Value(x) + barrier(slack)
			for ls := 0; ls < 60; ls++ {
				for i := range xTrial {
					xTrial[i] = x[i] + step*dx[i]
				}
				if strictlyFeasible(p.G, p.H, xTrial) {
					computeSlack(p.G, p.H, xTrial, slack)
					phi := t*p.Obj.Value(xTrial) + barrier(slack)
					if phi <= phi0-1e-4*step*lambda2 {
						break
					}
				}
				step *= 0.5
			}
			for i := range x {
				x[i] += step * dx[i]
			}
			opts.Obs.Iteration("convex.newton", iter, obs.IterStats{
				Stage: outer, Decrement: lambda2, Step: step,
			})
			if step*math.Sqrt(lambda2) < 1e-12 {
				break
			}
		}
		if float64(m)/t < opts.Tol {
			res.Converged = true
			break
		}
		t *= opts.Mu
	}
	computeSlack(p.G, p.H, x, slack)
	duals := make([]float64, m)
	for r := range duals {
		//sorallint:ignore divguard barrier invariant: slack is strictly positive at the final iterate and t grows from a positive start
		duals[r] = 1 / (t * slack[r])
	}
	res.X = x
	res.Obj = p.Obj.Value(x)
	res.Duals = duals
	return res, nil
}

func computeSlack(g *lp.SparseMatrix, h, x, slack []float64) {
	g.MulVec(slack, x)
	for r := range slack {
		slack[r] = h[r] - slack[r]
	}
}

func strictlyFeasible(g *lp.SparseMatrix, h, x []float64) bool {
	for r, row := range g.Rows {
		var s float64
		for _, e := range row {
			s += e.Val * x[e.Index]
		}
		if s >= h[r] {
			return false
		}
	}
	return true
}

// ComfortablyFeasible reports whether x is strictly feasible for G·x ≤ h
// with the same relative slack margin Solve demands of a caller-supplied
// warm start. Callers constructing warm points (core's slot-to-slot carry,
// DESIGN.md §13) use it to decide between handing the point to Solve and
// falling back to a structured cold start — a point rejected here would be
// silently replaced by a phase-I solve anyway.
func ComfortablyFeasible(g *lp.SparseMatrix, h, x []float64) bool {
	return comfortablyFeasible(g, h, x)
}

// comfortablyFeasible additionally demands a relative slack margin, so a
// warm start sitting numerically on the boundary (slack ~ 1e-300) does not
// blow up the barrier Hessian.
func comfortablyFeasible(g *lp.SparseMatrix, h, x []float64) bool {
	if !linalg.AllFinite(x) {
		return false
	}
	for r, row := range g.Rows {
		var s float64
		for _, e := range row {
			s += e.Val * x[e.Index]
		}
		if h[r]-s < 1e-9*(1+math.Abs(h[r])) {
			return false
		}
	}
	return true
}

func barrier(slack []float64) float64 {
	var b float64
	for _, s := range slack {
		b -= math.Log(s)
	}
	return b
}

func maxAbsDiag(m *linalg.Dense) float64 {
	var v float64
	for i := 0; i < m.Rows; i++ {
		if d := math.Abs(m.At(i, i)); d > v {
			v = d
		}
	}
	if v <= 0 {
		return 1
	}
	return v
}
