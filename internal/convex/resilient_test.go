package convex

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"soral/internal/resilience"
)

// quadBox returns the (x−3)² box problem with a strictly interior start, so
// the barrier loop — and only it — is exercised by injected faults.
func quadBox() (*Problem, []float64) {
	g, h := boxConstraints([]float64{0}, []float64{10})
	return &Problem{Obj: &QuadObjective{DiagQ: []float64{2}, C: []float64{-6}}, G: g, H: h}, []float64{5}
}

func TestBarrierNaNInjection(t *testing.T) {
	p, x0 := quadBox()
	_, err := Solve(p, x0, Options{Fault: &resilience.FaultPlan{InjectNaN: true, InjectNaNAt: 1}})
	se, ok := resilience.AsSolveError(err)
	if !ok || se.Class != resilience.ClassNonFinite {
		t.Fatalf("err = %v, want non-finite SolveError", err)
	}
	if se.Stage != "convex.barrier" || se.Iters < 1 {
		t.Fatalf("stage %q iters %d", se.Stage, se.Iters)
	}
}

func TestBarrierForcedFactorizationFailure(t *testing.T) {
	p, x0 := quadBox()
	_, err := Solve(p, x0, Options{Fault: &resilience.FaultPlan{FailFactorization: true, FailFactorizationAt: 0}})
	se, ok := resilience.AsSolveError(err)
	if !ok || se.Class != resilience.ClassFactorization || !errors.Is(err, resilience.ErrInjected) {
		t.Fatalf("err = %v, want injected factorization SolveError", err)
	}
}

func TestBarrierInjectedBudgetExhaustion(t *testing.T) {
	p, x0 := quadBox()
	_, err := Solve(p, x0, Options{Fault: &resilience.FaultPlan{ExhaustAfter: 2}})
	se, ok := resilience.AsSolveError(err)
	if !ok || se.Class != resilience.ClassIterationLimit || !errors.Is(err, resilience.ErrInjected) {
		t.Fatalf("err = %v, want injected iteration-limit SolveError", err)
	}
}

func TestBarrierPanicConversion(t *testing.T) {
	p, x0 := quadBox()
	res, err := Solve(p, x0, Options{Fault: &resilience.FaultPlan{Panic: true, PanicAt: 0}})
	if res != nil {
		t.Fatalf("panicked solve returned a result: %+v", res)
	}
	se, ok := resilience.AsSolveError(err)
	if !ok || se.Class != resilience.ClassPanic {
		t.Fatalf("err = %v, want panic SolveError", err)
	}
}

func TestBarrierRetrySucceedsAfterTripBudget(t *testing.T) {
	// MaxTrips = 1: the first solve absorbs the fault, a retry with the same
	// plan must run clean — the contract the fallback ladder depends on.
	p, x0 := quadBox()
	fault := &resilience.FaultPlan{InjectNaN: true, InjectNaNAt: 0, MaxTrips: 1}
	if _, err := Solve(p, x0, Options{Fault: fault}); err == nil {
		t.Fatal("first attempt did not fail")
	}
	res, err := Solve(p, x0, Options{Fault: fault})
	if err != nil || !res.Converged {
		t.Fatalf("retry after trip budget: err %v", err)
	}
	if math.Abs(res.X[0]-3) > 1e-4 {
		t.Fatalf("retry x = %v, want 3", res.X[0])
	}
}

func TestBarrierCanceledContext(t *testing.T) {
	p, x0 := quadBox()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Solve(p, x0, Options{Ctx: ctx})
	se, ok := resilience.AsSolveError(err)
	if !ok || se.Class != resilience.ClassCanceled || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled SolveError", err)
	}
}

func TestBarrierDeadlineMidIteration(t *testing.T) {
	p, x0 := quadBox()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(50*time.Microsecond))
	defer cancel()
	var err error
	for {
		_, err = Solve(p, x0, Options{Ctx: ctx})
		if err != nil {
			break
		}
	}
	se, ok := resilience.AsSolveError(err)
	if !ok || se.Class != resilience.ClassCanceled || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline-exceeded SolveError", err)
	}
}
