// Package pricing synthesizes the paper's operating prices (Section V-A):
// hourly real-time electricity prices per RTO market (Table I) for the
// tier-2 clouds, and Amazon-EC2-style tiered WAN bandwidth prices (Table II)
// for the inter-tier networks.
//
// US wholesale electricity prices are modeled, as in the paper's source
// [17], as Gaussian with per-market mean and standard deviation; tier-2
// locations without an hourly real-time market use the fixed mean price of
// the geographically closest market. Rows of Table I that are illegible in
// the available scan carry documented plausible values (see DESIGN.md §3).
package pricing

import (
	"fmt"
	"math/rand"
)

// Market is one RTO/ISO real-time electricity market.
type Market struct {
	Name string
	Mean float64 // $/MWh
	SD   float64 // $/MWh
}

// Table I markets. PJM (Annapolis row), the Chicago PJM node, CAISO, and
// ISONE carry the paper's printed numbers; NYISO and the Washington-DC PJM
// node are reconstructed.
var (
	MarketPJM     = Market{Name: "PJM", Mean: 40.6, SD: 26.9}
	MarketPJMChi  = Market{Name: "PJM-ComEd", Mean: 54.0, SD: 34.2}
	MarketPJMDC   = Market{Name: "PJM-DC", Mean: 44.0, SD: 28.0}
	MarketCAISO   = Market{Name: "CAISO", Mean: 77.9, SD: 40.3}
	MarketNYISO   = Market{Name: "NYISO", Mean: 64.7, SD: 35.0}
	MarketNYISOAl = Market{Name: "NYISO-Albany", Mean: 52.0, SD: 30.0}
	MarketISONE   = Market{Name: "ISONE", Mean: 66.5, SD: 25.8}
)

// LocPrice describes how one tier-2 location is priced.
type LocPrice struct {
	Location string
	Market   Market
	RealTime bool // false → fixed at the market mean
}

// DefaultElectricity returns the pricing rule for the 18 tier-2 metros of
// package topology, in the same order.
func DefaultElectricity() []LocPrice {
	fixed := func(loc string, m Market) LocPrice {
		return LocPrice{Location: loc, Market: m, RealTime: false}
	}
	rt := func(loc string, m Market) LocPrice {
		return LocPrice{Location: loc, Market: m, RealTime: true}
	}
	return []LocPrice{
		fixed("Seattle", MarketCAISO), // nearest market: CAISO
		rt("San Francisco", MarketCAISO),
		rt("San Jose", MarketCAISO),
		rt("Los Angeles", MarketCAISO),
		fixed("San Diego", MarketCAISO),
		fixed("Phoenix", MarketCAISO),
		fixed("Dallas", MarketPJMChi), // ERCOT is not hourly-synthesized here; nearest modeled market
		fixed("Austin", MarketPJMChi),
		rt("Chicago", MarketPJMChi),
		fixed("St. Louis", MarketPJMChi),
		fixed("Nashville", MarketPJM),
		fixed("Atlanta", MarketPJM),
		fixed("Orlando", MarketPJM),
		rt("Washington", MarketPJMDC),
		rt("Annapolis", MarketPJM),
		rt("New York", MarketNYISO),
		rt("Albany", MarketNYISOAl),
		rt("Boston", MarketISONE),
	}
}

// Synthesize draws T hours of prices for every location: Gaussian per hour
// for real-time locations, the market mean otherwise. Prices are floored at
// 10% of the market mean (negative wholesale prices exist in reality but
// the paper's cost model assumes non-negative operating prices).
func Synthesize(locs []LocPrice, T int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, T)
	for t := 0; t < T; t++ {
		row := make([]float64, len(locs))
		for i, lp := range locs {
			if lp.RealTime {
				v := lp.Market.Mean + rng.NormFloat64()*lp.Market.SD
				if floor := 0.1 * lp.Market.Mean; v < floor {
					v = floor
				}
				row[i] = v
			} else {
				row[i] = lp.Market.Mean
			}
		}
		out[t] = row
	}
	return out
}

// BandwidthTier is one row of Table II.
type BandwidthTier struct {
	UpToGBMonth float64 // inclusive upper edge of the tier; +Inf for the last
	PricePerGB  float64
}

// BandwidthTiers returns Table II (Amazon EC2 data-transfer pricing of the
// paper's era). The >500 GB/month tier extends the table's trend.
func BandwidthTiers() []BandwidthTier {
	return []BandwidthTier{
		{UpToGBMonth: 10, PricePerGB: 0.09},
		{UpToGBMonth: 50, PricePerGB: 0.085},
		{UpToGBMonth: 150, PricePerGB: 0.07},
		{UpToGBMonth: 500, PricePerGB: 0.05},
		{UpToGBMonth: -1, PricePerGB: 0.04}, // >500
	}
}

// BandwidthPrice returns the unit price for a network of the given monthly
// capacity, per the tiered scheme. Capacity must be positive.
func BandwidthPrice(capGBMonth float64) (float64, error) {
	if capGBMonth <= 0 {
		return 0, fmt.Errorf("pricing: capacity %g GB/month", capGBMonth)
	}
	for _, tier := range BandwidthTiers() {
		if tier.UpToGBMonth < 0 || capGBMonth <= tier.UpToGBMonth {
			return tier.PricePerGB, nil
		}
	}
	return 0, fmt.Errorf("pricing: unreachable tier for %g", capGBMonth)
}
