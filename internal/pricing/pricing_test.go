package pricing

import (
	"math"
	"testing"
)

func TestDefaultElectricityCoversTopology(t *testing.T) {
	locs := DefaultElectricity()
	if len(locs) != 18 {
		t.Fatalf("%d locations, want 18", len(locs))
	}
	// The paper's printed Table I rows must be present with their numbers.
	want := map[string][2]float64{
		"Annapolis":     {40.6, 26.9},
		"Chicago":       {54.0, 34.2},
		"San Francisco": {77.9, 40.3},
		"San Jose":      {77.9, 40.3},
		"Boston":        {66.5, 25.8},
	}
	for _, lp := range locs {
		if stats, ok := want[lp.Location]; ok {
			if lp.Market.Mean != stats[0] || lp.Market.SD != stats[1] {
				t.Fatalf("%s: mean/sd = %v/%v, want %v", lp.Location, lp.Market.Mean, lp.Market.SD, stats)
			}
			if !lp.RealTime {
				t.Fatalf("%s must be a real-time market", lp.Location)
			}
		}
	}
}

func TestSynthesizeShapes(t *testing.T) {
	locs := DefaultElectricity()
	prices := Synthesize(locs, 100, 7)
	if len(prices) != 100 || len(prices[0]) != len(locs) {
		t.Fatal("wrong shape")
	}
	for t2, row := range prices {
		for i, v := range row {
			if v <= 0 {
				t.Fatalf("non-positive price at (%d,%d)", t2, i)
			}
			if !locs[i].RealTime && v != locs[i].Market.Mean {
				t.Fatalf("fixed-price location %d varies", i)
			}
		}
	}
}

func TestSynthesizeStatistics(t *testing.T) {
	// Over a long horizon the empirical mean of a real-time location must be
	// near the market mean (the floor clips the left tail slightly upward).
	locs := DefaultElectricity()
	T := 20000
	prices := Synthesize(locs, T, 3)
	for i, lp := range locs {
		if !lp.RealTime {
			continue
		}
		var sum float64
		for t2 := 0; t2 < T; t2++ {
			sum += prices[t2][i]
		}
		mean := sum / float64(T)
		if math.Abs(mean-lp.Market.Mean) > 0.15*lp.Market.Mean {
			t.Fatalf("%s empirical mean %v vs market %v", lp.Location, mean, lp.Market.Mean)
		}
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	locs := DefaultElectricity()
	a := Synthesize(locs, 10, 42)
	b := Synthesize(locs, 10, 42)
	for t2 := range a {
		for i := range a[t2] {
			if a[t2][i] != b[t2][i] {
				t.Fatal("same seed, different prices")
			}
		}
	}
	c := Synthesize(locs, 10, 43)
	same := true
	for t2 := range a {
		for i := range a[t2] {
			if a[t2][i] != c[t2][i] && locs[i].RealTime {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical prices")
	}
}

func TestBandwidthPriceTiers(t *testing.T) {
	cases := map[float64]float64{
		5:    0.09,
		10:   0.09,
		11:   0.085,
		50:   0.085,
		100:  0.07,
		150:  0.07,
		400:  0.05,
		500:  0.05,
		1000: 0.04,
	}
	for capacity, want := range cases {
		got, err := BandwidthPrice(capacity)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("BandwidthPrice(%v) = %v, want %v", capacity, got, want)
		}
	}
	if _, err := BandwidthPrice(0); err == nil {
		t.Fatal("zero capacity accepted")
	}
	// Prices are non-increasing in capacity (volume discount).
	tiers := BandwidthTiers()
	for k := 1; k < len(tiers); k++ {
		if tiers[k].PricePerGB > tiers[k-1].PricePerGB {
			t.Fatal("tier prices must be non-increasing")
		}
	}
}
