package linalg

import (
	"errors"
	"math"
)

// ErrSingular is returned when an LU factorization meets an (effectively)
// zero pivot.
var ErrSingular = errors.New("linalg: matrix is singular")

// LU holds an LU factorization with partial pivoting: P·A = L·U, where L is
// unit lower triangular and U upper triangular, stored packed in a single
// matrix.
type LU struct {
	N    int
	lu   *Dense
	piv  []int
	sign int
}

// NewLU factorizes the square matrix A (copied, not modified).
func NewLU(a *Dense) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("linalg: LU on non-square matrix")
	}
	n := a.Rows
	f := &LU{N: n, lu: a.Clone(), piv: make([]int, n), sign: 1}
	for i := range f.piv {
		f.piv[i] = i
	}
	lu := f.lu
	for col := 0; col < n; col++ {
		// Find pivot.
		p := col
		maxAbs := math.Abs(lu.At(col, col))
		for r := col + 1; r < n; r++ {
			if a := math.Abs(lu.At(r, col)); a > maxAbs {
				maxAbs = a
				p = r
			}
		}
		if maxAbs <= 0 {
			return nil, ErrSingular
		}
		if p != col {
			rp, rc := lu.Row(p), lu.Row(col)
			for k := range rp {
				rp[k], rc[k] = rc[k], rp[k]
			}
			f.piv[p], f.piv[col] = f.piv[col], f.piv[p]
			f.sign = -f.sign
		}
		inv := 1 / lu.At(col, col)
		for r := col + 1; r < n; r++ {
			m := lu.At(r, col) * inv
			lu.Set(r, col, m)
			//sorallint:ignore floatcmp exact-zero sparsity fast path; any nonzero multiplier must update the row
			if m == 0 {
				continue
			}
			rowR := lu.Row(r)
			rowC := lu.Row(col)
			for k := col + 1; k < n; k++ {
				rowR[k] -= m * rowC[k]
			}
		}
	}
	return f, nil
}

// Solve solves A·x = b, writing into x (x must not alias b unless equal).
func (f *LU) Solve(x, b []float64) {
	if len(x) != f.N || len(b) != f.N {
		panic("linalg: LU.Solve dimension mismatch")
	}
	// Apply permutation: y = P·b.
	tmp := make([]float64, f.N)
	for i, p := range f.piv {
		tmp[i] = b[p]
	}
	// Forward substitution with unit lower triangle.
	for i := 0; i < f.N; i++ {
		row := f.lu.Row(i)
		s := tmp[i]
		for k := 0; k < i; k++ {
			s -= row[k] * tmp[k]
		}
		tmp[i] = s
	}
	// Backward substitution with U.
	for i := f.N - 1; i >= 0; i-- {
		row := f.lu.Row(i)
		s := tmp[i]
		for k := i + 1; k < f.N; k++ {
			s -= row[k] * tmp[k]
		}
		//sorallint:ignore divguard U diagonal is nonzero by construction (zero pivots rejected as ErrSingular)
		tmp[i] = s / row[i]
	}
	copy(x, tmp)
}

// Det returns the determinant of the factorized matrix.
func (f *LU) Det() float64 {
	d := float64(f.sign)
	for i := 0; i < f.N; i++ {
		d *= f.lu.At(i, i)
	}
	return d
}
