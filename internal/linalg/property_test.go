package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// quickCfg gives the quick checker a deterministic source.
func quickCfg(seed int64, n int) *quick.Config {
	return &quick.Config{MaxCount: n, Rand: rand.New(rand.NewSource(seed))}
}

func TestQuickDotBilinear(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		x, y, z := randVec(rng, n), randVec(rng, n), randVec(rng, n)
		a := rng.NormFloat64()
		// ⟨a·x + y, z⟩ = a⟨x,z⟩ + ⟨y,z⟩
		lhsVec := Clone(y)
		Axpy(a, x, lhsVec)
		lhs := Dot(lhsVec, z)
		rhs := a*Dot(x, z) + Dot(y, z)
		return almostEq(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, quickCfg(1, 200)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCholeskyResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := randSPD(rng, n)
		b := randVec(rng, n)
		c, err := NewCholesky(a, 0)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		c.Solve(x, b)
		ax := make([]float64, n)
		a.MulVec(ax, x)
		SubTo(ax, ax, b)
		return Norm2(ax) <= 1e-7*(1+Norm2(b))
	}
	if err := quick.Check(f, quickCfg(2, 100)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLUResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := randMatrix(rng, n, n)
		a.AddDiag(float64(n) + 1)
		b := randVec(rng, n)
		f2, err := NewLU(a)
		if err != nil {
			return false
		}
		x := make([]float64, n)
		f2.Solve(x, b)
		ax := make([]float64, n)
		a.MulVec(ax, x)
		SubTo(ax, ax, b)
		return Norm2(ax) <= 1e-7*(1+Norm2(b))
	}
	if err := quick.Check(f, quickCfg(3, 100)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTransposeOfProduct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := randMatrix(rng, m, k)
		b := randMatrix(rng, k, n)
		lhs := Mul(a, b).Transpose()
		rhs := Mul(b.Transpose(), a.Transpose())
		for i := range lhs.Data {
			if !almostEq(lhs.Data[i], rhs.Data[i], 1e-10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(4, 150)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBlockTriSymmetry(t *testing.T) {
	// The implicit symmetric matrix must satisfy xᵀMy = yᵀMx.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nb := 1 + rng.Intn(5)
		sizes := make([]int, nb)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(4)
		}
		m := randBlockTriSPD(rng, sizes)
		// Symmetrize the diagonal blocks (randSPD already is; coupling is
		// handled implicitly by MulVec).
		x := randVec(rng, m.Dim())
		y := randVec(rng, m.Dim())
		mx := make([]float64, m.Dim())
		my := make([]float64, m.Dim())
		m.MulVec(mx, x)
		m.MulVec(my, y)
		return almostEq(Dot(y, mx), Dot(x, my), 1e-8)
	}
	if err := quick.Check(f, quickCfg(5, 100)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNormTriangle(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		x, y := randVec(rng, n), randVec(rng, n)
		sum := make([]float64, n)
		AddTo(sum, x, y)
		return Norm2(sum) <= Norm2(x)+Norm2(y)+1e-12 &&
			Norm1(sum) <= Norm1(x)+Norm1(y)+1e-12 &&
			NormInf(sum) <= NormInf(x)+NormInf(y)+1e-12
	}
	if err := quick.Check(f, quickCfg(6, 200)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCholeskySPDOfGram(t *testing.T) {
	// Gram matrices AᵀA + δI are always factorizable without a shift.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(8), 1+rng.Intn(8)
		a := randMatrix(rng, m, n)
		g := Mul(a.Transpose(), a)
		g.AddDiag(0.5)
		c, err := NewCholesky(g, 0)
		if err != nil {
			return false
		}
		// Diagonal of L must be strictly positive.
		for i := 0; i < n; i++ {
			if c.L.At(i, i) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg(7, 150)); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLUDetSign(t *testing.T) {
	// det(A) via LU matches the 2×2 closed form.
	f := func(a, b, c, d float64) bool {
		for _, v := range []float64{a, b, c, d} {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
				return true // skip pathological draws
			}
		}
		m := NewDenseFrom(2, 2, []float64{a, b, c, d})
		want := a*d - b*c
		f2, err := NewLU(m)
		if err != nil {
			return math.Abs(want) < 1e-6 // singular only if det ≈ 0
		}
		return almostEq(f2.Det(), want, 1e-6)
	}
	if err := quick.Check(f, quickCfg(8, 300)); err != nil {
		t.Fatal(err)
	}
}
