// Package linalg provides the dense and block-structured linear algebra
// kernels that the soral optimization solvers are built on.
//
// It deliberately implements only what the interior-point and ADMM solvers
// need, but implements those pieces carefully:
//
//   - level-1 vector kernels (Dot, Axpy, norms) on raw []float64,
//   - a dense row-major matrix type with multiply and transpose-multiply,
//   - Cholesky factorization with optional diagonal regularization for
//     nearly-singular normal-equation systems,
//   - LU factorization with partial pivoting for general square systems,
//   - a symmetric positive definite block-tridiagonal Cholesky factorization,
//     which is the kernel that makes multi-period ("staircase") interior-point
//     solves linear in the horizon length instead of cubic.
//
// All routines are deterministic and allocate only when constructing new
// objects; factorizations can be reused across solves.
package linalg
