package linalg

import (
	"math/rand"
	"testing"
)

// randBlockTriSPD builds a random SPD block-tridiagonal matrix by assembling
// M = KᵀK + I where K has the right band structure, realized directly in
// block form: D_t = AᵀA + I dominant, E_t small coupling.
func randBlockTriSPD(rng *rand.Rand, sizes []int) *BlockTriDiag {
	m := NewBlockTriDiag(sizes)
	for t, n := range sizes {
		d := randSPD(rng, n)
		// Make diagonally dominant relative to coupling blocks.
		d.AddDiag(10 * float64(n))
		m.Diag[t] = d
		if t > 0 {
			e := randMatrix(rng, n, sizes[t-1])
			Scale(0.5, e.Data)
			m.Sub[t-1] = e
		}
	}
	return m
}

// toDense expands a block-tridiagonal matrix to a dense matrix for reference.
func (m *BlockTriDiag) toDense() *Dense {
	off := m.Offsets()
	n := off[len(off)-1]
	d := NewDense(n, n)
	for t, blk := range m.Diag {
		for i := 0; i < blk.Rows; i++ {
			for j := 0; j < blk.Cols; j++ {
				d.Set(off[t]+i, off[t]+j, blk.At(i, j))
			}
		}
	}
	for t, e := range m.Sub {
		for i := 0; i < e.Rows; i++ {
			for j := 0; j < e.Cols; j++ {
				d.Set(off[t+1]+i, off[t]+j, e.At(i, j))
				d.Set(off[t]+j, off[t+1]+i, e.At(i, j))
			}
		}
	}
	return d
}

func TestBlockTriMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 10; trial++ {
		nb := 1 + rng.Intn(5)
		sizes := make([]int, nb)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(4)
		}
		m := randBlockTriSPD(rng, sizes)
		x := randVec(rng, m.Dim())
		got := make([]float64, m.Dim())
		m.MulVec(got, x)
		want := make([]float64, m.Dim())
		m.toDense().MulVec(want, x)
		for i := range got {
			if !almostEq(got[i], want[i], 1e-10) {
				t.Fatalf("MulVec mismatch at %d: %v vs %v", i, got[i], want[i])
			}
		}
	}
}

func TestBlockTriCholSolveMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 15; trial++ {
		nb := 1 + rng.Intn(6)
		sizes := make([]int, nb)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(5)
		}
		m := randBlockTriSPD(rng, sizes)
		xTrue := randVec(rng, m.Dim())
		b := make([]float64, m.Dim())
		m.MulVec(b, xTrue)

		f, err := NewBlockTriChol(m, 0)
		if err != nil {
			t.Fatalf("factorize: %v", err)
		}
		x := make([]float64, m.Dim())
		f.Solve(x, b)
		for i := range x {
			if !almostEq(x[i], xTrue[i], 1e-7) {
				t.Fatalf("solve mismatch at %d: %v vs %v", i, x[i], xTrue[i])
			}
		}
	}
}

func TestBlockTriCholSolveAliased(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m := randBlockTriSPD(rng, []int{3, 4, 2})
	xTrue := randVec(rng, m.Dim())
	b := make([]float64, m.Dim())
	m.MulVec(b, xTrue)
	f, err := NewBlockTriChol(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Solve(b, b)
	for i := range b {
		if !almostEq(b[i], xTrue[i], 1e-7) {
			t.Fatal("aliased block solve wrong")
		}
	}
}

func TestBlockTriSingleBlockEqualsCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randSPD(rng, 6)
	m := NewBlockTriDiag([]int{6})
	m.Diag[0] = a
	f, err := NewBlockTriChol(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	xTrue := randVec(rng, 6)
	b := make([]float64, 6)
	a.MulVec(b, xTrue)
	x := make([]float64, 6)
	f.Solve(x, b)
	for i := range x {
		if !almostEq(x[i], xTrue[i], 1e-8) {
			t.Fatal("single-block solve differs from Cholesky")
		}
	}
}

func TestBlockTriValidate(t *testing.T) {
	m := NewBlockTriDiag([]int{2, 3})
	if err := m.Validate(); err != nil {
		t.Fatalf("valid structure rejected: %v", err)
	}
	m.Sub[0] = NewDense(2, 2) // wrong shape, should be 3x2
	if err := m.Validate(); err == nil {
		t.Fatal("invalid sub-diagonal shape accepted")
	}
	m2 := &BlockTriDiag{Diag: []*Dense{NewDense(2, 3)}}
	if err := m2.Validate(); err == nil {
		t.Fatal("non-square diagonal block accepted")
	}
}

func TestBlockTriEmptyFactorization(t *testing.T) {
	m := &BlockTriDiag{}
	if _, err := NewBlockTriChol(m, 0); err == nil {
		t.Fatal("expected error for empty matrix")
	}
}

func TestBlockTriOffsets(t *testing.T) {
	m := NewBlockTriDiag([]int{2, 3, 1})
	off := m.Offsets()
	want := []int{0, 2, 5, 6}
	for i := range want {
		if off[i] != want[i] {
			t.Fatalf("Offsets = %v", off)
		}
	}
	if m.Dim() != 6 || m.NumBlocks() != 3 {
		t.Fatal("Dim/NumBlocks wrong")
	}
}

func TestBlockTriCholLongChain(t *testing.T) {
	// A long horizon with small blocks — the staircase IPM regime.
	rng := rand.New(rand.NewSource(24))
	sizes := make([]int, 80)
	for i := range sizes {
		sizes[i] = 3
	}
	m := randBlockTriSPD(rng, sizes)
	xTrue := randVec(rng, m.Dim())
	b := make([]float64, m.Dim())
	m.MulVec(b, xTrue)
	f, err := NewBlockTriChol(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, m.Dim())
	f.Solve(x, b)
	for i := range x {
		if !almostEq(x[i], xTrue[i], 1e-6) {
			t.Fatalf("long-chain solve mismatch at %d", i)
		}
	}
}
