package linalg

import (
	"math/rand"
	"testing"
)

func TestCholeskyReconstruct(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(12)
		a := randSPD(rng, n)
		c, err := NewCholesky(a, 0)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if c.Shift != 0 {
			t.Fatalf("unexpected shift %v for SPD matrix", c.Shift)
		}
		rec := Mul(c.L, c.L.Transpose())
		for i := range a.Data {
			if !almostEq(rec.Data[i], a.Data[i], 1e-9) {
				t.Fatalf("L·Lᵀ ≠ A at %d: %v vs %v", i, rec.Data[i], a.Data[i])
			}
		}
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(15)
		a := randSPD(rng, n)
		xTrue := randVec(rng, n)
		b := make([]float64, n)
		a.MulVec(b, xTrue)
		c, err := NewCholesky(a, 0)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		c.Solve(x, b)
		for i := range x {
			if !almostEq(x[i], xTrue[i], 1e-8) {
				t.Fatalf("solve mismatch at %d: %v vs %v", i, x[i], xTrue[i])
			}
		}
	}
}

func TestCholeskySolveAliased(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randSPD(rng, 6)
	xTrue := randVec(rng, 6)
	b := make([]float64, 6)
	a.MulVec(b, xTrue)
	c, _ := NewCholesky(a, 0)
	c.Solve(b, b) // in-place
	for i := range b {
		if !almostEq(b[i], xTrue[i], 1e-8) {
			t.Fatal("aliased solve wrong")
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, −1
	if _, err := NewCholesky(a, 0); err == nil {
		t.Fatal("expected failure on indefinite matrix without shift")
	}
}

func TestCholeskyShiftRepairsSemidefinite(t *testing.T) {
	// Rank-deficient PSD matrix: vvᵀ.
	v := []float64{1, 2, 3}
	a := NewDense(3, 3)
	for i := range v {
		for j := range v {
			a.Set(i, j, v[i]*v[j])
		}
	}
	c, err := NewCholesky(a, 1)
	if err != nil {
		t.Fatalf("shifted Cholesky failed: %v", err)
	}
	if c.Shift <= 0 {
		t.Fatal("expected a positive shift to have been applied")
	}
}

func TestCholeskyNonSquare(t *testing.T) {
	if _, err := NewCholesky(NewDense(2, 3), 0); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestSolveLowerUpper(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randSPD(rng, 8)
	c, _ := NewCholesky(a, 0)
	xTrue := randVec(rng, 8)
	// b = L·xTrue, then SolveLower must recover xTrue.
	b := make([]float64, 8)
	c.L.MulVec(b, xTrue)
	y := make([]float64, 8)
	c.SolveLower(y, b)
	for i := range y {
		if !almostEq(y[i], xTrue[i], 1e-9) {
			t.Fatal("SolveLower wrong")
		}
	}
	// b = Lᵀ·xTrue, then SolveUpper must recover xTrue.
	c.L.Transpose().MulVec(b, xTrue)
	c.SolveUpper(y, b)
	for i := range y {
		if !almostEq(y[i], xTrue[i], 1e-9) {
			t.Fatal("SolveUpper wrong")
		}
	}
}

func TestLUSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(12)
		a := randMatrix(rng, n, n)
		a.AddDiag(float64(n)) // keep well-conditioned
		xTrue := randVec(rng, n)
		b := make([]float64, n)
		a.MulVec(b, xTrue)
		f, err := NewLU(a)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		f.Solve(x, b)
		for i := range x {
			if !almostEq(x[i], xTrue[i], 1e-7) {
				t.Fatalf("LU solve mismatch at %d", i)
			}
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{1, 2, 2, 4})
	if _, err := NewLU(a); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestLUDet(t *testing.T) {
	a := NewDenseFrom(2, 2, []float64{3, 1, 4, 2}) // det = 2
	f, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Det(), 2, 1e-12) {
		t.Fatalf("Det = %v, want 2", f.Det())
	}
}

func TestLUPermutationHandling(t *testing.T) {
	// First pivot is zero, forcing a row swap.
	a := NewDenseFrom(2, 2, []float64{0, 1, 1, 0})
	f, err := NewLU(a)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2)
	f.Solve(x, []float64{5, 7})
	if !almostEq(x[0], 7, 1e-12) || !almostEq(x[1], 5, 1e-12) {
		t.Fatalf("permuted solve got %v", x)
	}
}
