package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	d := math.Abs(a - b)
	s := math.Max(math.Abs(a), math.Abs(b))
	if s < 1 {
		return d <= tol
	}
	return d <= tol*s
}

func TestDot(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, -5, 6}
	if got := Dot(x, y); got != 1*4-2*5+3*6 {
		t.Fatalf("Dot = %v", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpy(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{10, 20}
	Axpy(2, x, y)
	if y[0] != 12 || y[1] != 24 {
		t.Fatalf("Axpy got %v", y)
	}
	Axpy(0, x, y) // no-op
	if y[0] != 12 || y[1] != 24 {
		t.Fatalf("Axpy(0) changed y: %v", y)
	}
}

func TestNorm2AgainstNaive(t *testing.T) {
	f := func(xs []float64) bool {
		for i := range xs {
			// Keep values sane to avoid naive-overflow in the reference.
			xs[i] = math.Mod(xs[i], 1e6)
			if math.IsNaN(xs[i]) {
				xs[i] = 0
			}
		}
		var ss float64
		for _, v := range xs {
			ss += v * v
		}
		return almostEq(Norm2(xs), math.Sqrt(ss), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNorm2Overflow(t *testing.T) {
	x := []float64{1e200, 1e200}
	want := 1e200 * math.Sqrt(2)
	if got := Norm2(x); !almostEq(got, want, 1e-12) {
		t.Fatalf("Norm2 overflow-guard got %v want %v", got, want)
	}
}

func TestNormInfNorm1(t *testing.T) {
	x := []float64{-3, 2, 1}
	if NormInf(x) != 3 {
		t.Fatalf("NormInf = %v", NormInf(x))
	}
	if Norm1(x) != 6 {
		t.Fatalf("Norm1 = %v", Norm1(x))
	}
	if NormInf(nil) != 0 {
		t.Fatal("NormInf(nil) != 0")
	}
}

func TestCloneIndependence(t *testing.T) {
	x := []float64{1, 2}
	y := Clone(x)
	y[0] = 9
	if x[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestAddSubTo(t *testing.T) {
	x := []float64{1, 2}
	y := []float64{3, 5}
	dst := make([]float64, 2)
	AddTo(dst, x, y)
	if dst[0] != 4 || dst[1] != 7 {
		t.Fatalf("AddTo got %v", dst)
	}
	SubTo(dst, y, x)
	if dst[0] != 2 || dst[1] != 3 {
		t.Fatalf("SubTo got %v", dst)
	}
	// Aliasing allowed.
	SubTo(x, x, x)
	if x[0] != 0 || x[1] != 0 {
		t.Fatalf("aliased SubTo got %v", x)
	}
}

func TestMinMaxSum(t *testing.T) {
	x := []float64{3, -1, 2}
	if MinElem(x) != -1 || MaxElem(x) != 3 || Sum(x) != 4 {
		t.Fatalf("min/max/sum wrong: %v %v %v", MinElem(x), MaxElem(x), Sum(x))
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, 2}) {
		t.Fatal("finite slice reported non-finite")
	}
	if AllFinite([]float64{1, math.NaN()}) {
		t.Fatal("NaN not detected")
	}
	if AllFinite([]float64{math.Inf(1)}) {
		t.Fatal("Inf not detected")
	}
}

func TestFillScale(t *testing.T) {
	x := make([]float64, 3)
	Fill(x, 2)
	Scale(3, x)
	for _, v := range x {
		if v != 6 {
			t.Fatalf("Fill/Scale got %v", x)
		}
	}
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}
