package linalg

import (
	"runtime"
	"sync"
)

// ResolveWorkers normalizes a worker-count knob: values ≤ 0 mean "use every
// processor Go will schedule" (GOMAXPROCS), anything else is taken as given.
// Callers that must reject negative values (package lp's Options validation)
// do so before resolving.
func ResolveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// parallelGrain is the minimum number of index units each worker must
// receive before a kernel bothers spawning goroutines: below it the
// startup/join cost exceeds the arithmetic being split.
const parallelGrain = 8

// ParallelRanges partitions [0, n) into at most `workers` fixed contiguous
// ranges and runs fn on each range, one goroutine per non-empty range,
// waiting for all of them.
//
// The partition is a pure function of (workers, n): range r covers
// [r·⌈n/w⌉, min((r+1)·⌈n/w⌉, n)). It never depends on scheduling, load, or
// completion order, which is what makes every kernel built on it
// deterministic: each output element is owned by exactly one range and is
// computed there in the same statement order as the serial loop, so the
// parallel result is bit-identical to the serial one (see DESIGN.md §8).
//
// workers ≤ 1, n ≤ parallelGrain, or a partition that would leave workers
// idle all collapse to a single inline call fn(0, n) on the caller's
// goroutine — the serial path is literally the parallel path with one range.
//
// Marked //soral:coldpath: the goroutine spawns are the deliberate, bounded
// price of the parallel branch, amortized over ≥parallelGrain work units per
// worker; the serial collapse spawns nothing. Kernels with a strict
// zero-allocation contract branch on EffectiveWorkers before building the
// closure they would pass here.
//
//soral:coldpath
func ParallelRanges(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = boundWorkers(workers, n)
	if workers == 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ParallelStrided partitions [0, n) round-robin: worker r handles the
// indices r, r+stride, r+2·stride, … where stride is the resolved worker
// count. Use it instead of ParallelRanges when per-index cost grows with the
// index (the triangular trailing update of a factorization), where
// contiguous ranges would pile the heavy tail onto the last worker.
//
// Like ParallelRanges the partition is a pure function of (workers, n), and
// every index is processed by exactly one worker, so kernels whose per-index
// work is self-contained stay bit-identical to serial. workers ≤ 1 or tiny n
// collapse to an inline fn(0, 1) call.
//
// Marked //soral:coldpath for the same reason as ParallelRanges: the spawns
// are the deliberate price of the parallel branch, absent on the serial
// collapse.
//
//soral:coldpath
func ParallelStrided(workers, n int, fn func(start, stride int)) {
	if n <= 0 {
		return
	}
	workers = boundWorkers(workers, n)
	if workers == 1 {
		fn(0, 1)
		return
	}
	var wg sync.WaitGroup
	for r := 0; r < workers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			fn(r, workers)
		}(r)
	}
	wg.Wait()
}

// EffectiveWorkers reports how many goroutines ParallelRanges and
// ParallelStrided would actually use for n units of work. Kernels with a
// zero-allocation contract branch on it: when it returns 1 they run their
// loop bodies directly instead of wrapping them in closures, because a
// closure literal passed to a goroutine-spawning function is heap-allocated
// at its creation site even on the collapsed serial path (escape analysis is
// not path-sensitive).
func EffectiveWorkers(workers, n int) int { return boundWorkers(workers, n) }

// boundWorkers clamps the worker count to the useful range for n units of
// work: at least 1, and never so many that a worker's share drops below
// parallelGrain. An explicit count above GOMAXPROCS is honored rather than
// clamped — the partition stays a pure function of the requested count, so a
// single-processor machine still exercises (and can test) the exact
// multi-goroutine decomposition a larger machine would run.
func boundWorkers(workers, n int) int {
	workers = ResolveWorkers(workers)
	if maxUseful := n / parallelGrain; workers > maxUseful {
		workers = maxUseful
	}
	if workers < 1 {
		return 1
	}
	return workers
}
