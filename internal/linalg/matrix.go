package linalg

import (
	"fmt"
	"strings"
)

// Dense is a dense row-major matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, element (r,c) at Data[r*Cols+c]
}

// NewDense allocates an r×c zero matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic("linalg: negative dimension")
	}
	return &Dense{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewDenseFrom builds an r×c matrix from row-major data (copied).
func NewDenseFrom(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("linalg: NewDenseFrom needs %d elements, got %d", r*c, len(data)))
	}
	m := NewDense(r, c)
	copy(m.Data, data)
	return m
}

// At returns the element at row r, column c.
func (m *Dense) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set assigns the element at row r, column c.
func (m *Dense) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Add increments the element at row r, column c by v.
func (m *Dense) Add(r, c int, v float64) { m.Data[r*m.Cols+c] += v }

// Row returns the r-th row as a slice sharing the matrix's storage.
func (m *Dense) Row(r int) []float64 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	n := NewDense(m.Rows, m.Cols)
	copy(n.Data, m.Data)
	return n
}

// Zero resets every element to 0, keeping the allocation.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// MulVec computes dst = M·x. dst must have length Rows and must not alias x.
func (m *Dense) MulVec(dst, x []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("linalg: MulVec dims %dx%d with x=%d dst=%d", m.Rows, m.Cols, len(x), len(dst)))
	}
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		var s float64
		for c, v := range row {
			s += v * x[c]
		}
		dst[r] = s
	}
}

// MulVecTrans computes dst = Mᵀ·x. dst must have length Cols and must not alias x.
func (m *Dense) MulVecTrans(dst, x []float64) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVecTrans dims %dx%d with x=%d dst=%d", m.Rows, m.Cols, len(x), len(dst)))
	}
	for c := range dst {
		dst[c] = 0
	}
	for r := 0; r < m.Rows; r++ {
		xr := x[r]
		//sorallint:ignore floatcmp exact-zero sparsity fast path; skipping only true zeros is lossless
		if xr == 0 {
			continue
		}
		row := m.Row(r)
		for c, v := range row {
			dst[c] += v * xr
		}
	}
}

// Mul returns A·B as a new matrix.
func Mul(a, b *Dense) *Dense { return MulWorkers(a, b, 1) }

// MulWorkers is Mul on `workers` goroutines. The rows of the product are
// partitioned into fixed contiguous ranges (ParallelRanges); every output
// row is computed by exactly one worker with the same statement order as the
// serial loop, so the result is bit-identical for every worker count.
func MulWorkers(a, b *Dense, workers int) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dims %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := NewDense(a.Rows, b.Cols)
	ParallelRanges(workers, a.Rows, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Row(i)
			crow := c.Row(i)
			for k := 0; k < a.Cols; k++ {
				aik := arow[k]
				//sorallint:ignore floatcmp exact-zero sparsity fast path; skipping only true zeros is lossless
				if aik == 0 {
					continue
				}
				brow := b.Row(k)
				for j := range crow {
					crow[j] += aik * brow[j]
				}
			}
		}
	})
	return c
}

// Transpose returns Mᵀ as a new matrix.
func (m *Dense) Transpose() *Dense {
	t := NewDense(m.Cols, m.Rows)
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c, v := range row {
			t.Data[c*t.Cols+r] = v
		}
	}
	return t
}

// AddDiag adds v to every diagonal element of a square matrix.
func (m *Dense) AddDiag(v float64) {
	if m.Rows != m.Cols {
		panic("linalg: AddDiag on non-square matrix")
	}
	for i := 0; i < m.Rows; i++ {
		m.Data[i*m.Cols+i] += v
	}
}

// Eye returns the n×n identity matrix.
func Eye(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// SymRankKUpdate accumulates dst += Aᵀ·diag(d)·A for an m×n matrix A and a
// weight vector d of length m. dst must be n×n. Only the full matrix is
// written (not just a triangle) so dst can be used directly by Cholesky.
func SymRankKUpdate(dst *Dense, a *Dense, d []float64) {
	SymRankKUpdateWorkers(dst, a, d, 1)
}

// SymRankKUpdateWorkers is SymRankKUpdate on `workers` goroutines. The
// output rows of dst (columns of A) are partitioned into fixed contiguous
// ranges; each worker walks every row of A in ascending order and
// accumulates only into its own dst rows, so every dst element receives its
// contributions in exactly the serial order — the parallel result is
// bit-identical to the serial one. Writes are disjoint by construction; the
// rows of A are only read.
func SymRankKUpdateWorkers(dst *Dense, a *Dense, d []float64, workers int) {
	if len(d) != a.Rows || dst.Rows != a.Cols || dst.Cols != a.Cols {
		panic("linalg: SymRankKUpdate dimension mismatch")
	}
	ParallelRanges(workers, a.Cols, func(lo, hi int) {
		for r := 0; r < a.Rows; r++ {
			w := d[r]
			//sorallint:ignore floatcmp exact-zero sparsity fast path; skipping only true zeros is lossless
			if w == 0 {
				continue
			}
			row := a.Row(r)
			for i := lo; i < hi; i++ {
				vi := row[i]
				//sorallint:ignore floatcmp exact-zero sparsity fast path; skipping only true zeros is lossless
				if vi == 0 {
					continue
				}
				wi := w * vi
				drow := dst.Row(i)
				for j, vj := range row {
					drow[j] += wi * vj
				}
			}
		}
	})
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var b strings.Builder
	for r := 0; r < m.Rows; r++ {
		row := m.Row(r)
		for c, v := range row {
			if c > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%10.4g", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
