package linalg

import (
	"errors"
	"fmt"
)

// BlockTriDiag is a symmetric block-tridiagonal matrix
//
//	⎡ D₀  E₁ᵀ          ⎤
//	⎢ E₁  D₁  E₂ᵀ      ⎥
//	⎢     E₂  D₂  ⋱    ⎥
//	⎣         ⋱   ⋱    ⎦
//
// with square diagonal blocks D_t (sizes may vary) and sub-diagonal blocks
// E_t of shape len(D_t) × len(D_{t−1}). Only D and the sub-diagonal E are
// stored; symmetry is implicit.
//
// This is exactly the sparsity pattern of the interior-point normal equations
// of a multi-period optimization problem whose constraints couple only
// adjacent periods, which is what makes the staircase LP solver linear in the
// horizon length.
type BlockTriDiag struct {
	Diag []*Dense // T diagonal blocks, Diag[t] is n_t × n_t
	Sub  []*Dense // T−1 sub-diagonal blocks, Sub[t] couples block t+1 to block t (n_{t+1} × n_t)
}

// NewBlockTriDiag allocates zero blocks for the given block sizes.
func NewBlockTriDiag(sizes []int) *BlockTriDiag {
	m := &BlockTriDiag{
		Diag: make([]*Dense, len(sizes)),
		Sub:  make([]*Dense, 0, len(sizes)),
	}
	for t, n := range sizes {
		m.Diag[t] = NewDense(n, n)
		if t > 0 {
			m.Sub = append(m.Sub, NewDense(n, sizes[t-1]))
		}
	}
	return m
}

// NumBlocks returns the number of diagonal blocks.
func (m *BlockTriDiag) NumBlocks() int { return len(m.Diag) }

// Dim returns the total dimension Σ n_t.
func (m *BlockTriDiag) Dim() int {
	n := 0
	for _, d := range m.Diag {
		n += d.Rows
	}
	return n
}

// Offsets returns the starting index of each block within a flat vector.
func (m *BlockTriDiag) Offsets() []int {
	off := make([]int, len(m.Diag)+1)
	for t, d := range m.Diag {
		off[t+1] = off[t] + d.Rows
	}
	return off
}

// Validate checks block shape consistency.
func (m *BlockTriDiag) Validate() error {
	if len(m.Sub) != len(m.Diag)-1 && !(len(m.Diag) == 0 && len(m.Sub) == 0) {
		return fmt.Errorf("linalg: block-tridiag has %d diagonal and %d sub-diagonal blocks", len(m.Diag), len(m.Sub))
	}
	for t, d := range m.Diag {
		if d.Rows != d.Cols {
			return fmt.Errorf("linalg: diagonal block %d is %dx%d", t, d.Rows, d.Cols)
		}
		if t > 0 {
			e := m.Sub[t-1]
			if e.Rows != d.Rows || e.Cols != m.Diag[t-1].Rows {
				return fmt.Errorf("linalg: sub-diagonal block %d is %dx%d, want %dx%d",
					t-1, e.Rows, e.Cols, d.Rows, m.Diag[t-1].Rows)
			}
		}
	}
	return nil
}

// MulVec computes dst = M·x for the full symmetric matrix.
func (m *BlockTriDiag) MulVec(dst, x []float64) {
	off := m.Offsets()
	if len(x) != off[len(off)-1] || len(dst) != len(x) {
		panic("linalg: BlockTriDiag.MulVec dimension mismatch")
	}
	tmp := make([]float64, 0)
	for t, d := range m.Diag {
		xt := x[off[t]:off[t+1]]
		dt := dst[off[t]:off[t+1]]
		if cap(tmp) < len(dt) {
			tmp = make([]float64, len(dt))
		}
		tmp = tmp[:len(dt)]
		d.MulVec(tmp, xt)
		copy(dt, tmp)
	}
	for t, e := range m.Sub {
		// e couples block t+1 (rows) with block t (cols).
		xlo := x[off[t]:off[t+1]]
		xhi := x[off[t+1]:off[t+2]]
		dlo := dst[off[t]:off[t+1]]
		dhi := dst[off[t+1]:off[t+2]]
		// dhi += E·xlo
		th := make([]float64, len(dhi))
		e.MulVec(th, xlo)
		Axpy(1, th, dhi)
		// dlo += Eᵀ·xhi
		tl := make([]float64, len(dlo))
		e.MulVecTrans(tl, xhi)
		Axpy(1, tl, dlo)
	}
}

// BlockTriChol is the block Cholesky factorization of a symmetric positive
// definite block-tridiagonal matrix: M = L·Lᵀ with L block lower bidiagonal.
// The zero BlockTriChol is a valid workspace: Refactorize fills it and
// reuses every internal buffer (per-block factors, coupling blocks, Schur
// scratch, solve scratch) across calls with the same block structure.
type BlockTriChol struct {
	factors []*Cholesky // per-block lower-triangular factors L_t
	offdiag []*Dense    // F_t = E_t · L_{t−1}⁻ᵀ, t = 1..T−1 (indexed t−1)
	offsets []int

	schur   []*Dense  // reusable per-block Schur complement workspaces
	scratch []float64 // per-solve coupling scratch (max block size)
}

// NewBlockTriChol factorizes M. maxShift controls per-block diagonal
// regularization exactly as in NewCholesky.
func NewBlockTriChol(m *BlockTriDiag, maxShift float64) (*BlockTriChol, error) {
	f := &BlockTriChol{}
	if err := f.RefactorizeWorkers(m, maxShift, 1); err != nil {
		return nil, err
	}
	return f, nil
}

// Refactorize factorizes M into the receiver, reusing its buffers when the
// block structure matches the previous call. On error the factor contents
// are undefined and must not be used for solves.
//
//soral:hotpath
func (f *BlockTriChol) Refactorize(m *BlockTriDiag, maxShift float64) error {
	return f.RefactorizeWorkers(m, maxShift, 1)
}

// RefactorizeWorkers is Refactorize with the per-block kernels — the F_t
// coupling solves, the Schur complement updates S_t = D_t − F_t·F_tᵀ, and
// the dense block factorizations — run on `workers` goroutines. The block
// recurrence itself is inherently sequential (block t needs L_{t−1}), so
// parallelism lives inside each block step; results are bit-identical to
// serial for every worker count because every output row of every kernel is
// owned by one worker and computed in serial order.
func (f *BlockTriChol) RefactorizeWorkers(m *BlockTriDiag, maxShift float64, workers int) error {
	if err := m.Validate(); err != nil {
		return err
	}
	T := len(m.Diag)
	if T == 0 {
		return errors.New("linalg: empty block-tridiagonal matrix")
	}
	if len(f.factors) != T {
		f.factors = make([]*Cholesky, T)
		f.offdiag = make([]*Dense, T-1)
		f.schur = make([]*Dense, T)
	}
	f.offsets = m.Offsets()
	maxBlock := 0
	for _, d := range m.Diag {
		if d.Rows > maxBlock {
			maxBlock = d.Rows
		}
	}
	if len(f.scratch) < maxBlock {
		f.scratch = make([]float64, maxBlock)
	}
	var prev *Cholesky
	for t := 0; t < T; t++ {
		d := m.Diag[t]
		s := f.schur[t]
		if s == nil || s.Rows != d.Rows || s.Cols != d.Cols {
			s = NewDense(d.Rows, d.Cols)
			f.schur[t] = s
		}
		copy(s.Data, d.Data)
		if t > 0 {
			e := m.Sub[t-1]
			ft := f.offdiag[t-1]
			if ft == nil || ft.Rows != e.Rows || ft.Cols != e.Cols {
				ft = NewDense(e.Rows, e.Cols)
				f.offdiag[t-1] = ft
			}
			// F_t = E_t · L_{t−1}⁻ᵀ: solve L_{t−1}·(F_t row)ᵀ = (E_t row)ᵀ
			// per row; the rows are independent. The serial collapse calls
			// the kernels directly — closure literals would be heap-allocated
			// even on the collapsed path, and Refactorize sits inside the
			// solvers' zero-allocation loop (see EffectiveWorkers).
			if EffectiveWorkers(workers, e.Rows) == 1 {
				blockCouplingSolve(ft, e, prev, 0, e.Rows)
			} else {
				lp := prev
				ParallelRanges(workers, e.Rows, func(lo, hi int) {
					blockCouplingSolve(ft, e, lp, lo, hi)
				})
			}
			// S_t = D_t − F_t·F_tᵀ, row ranges independent.
			if EffectiveWorkers(workers, ft.Rows) == 1 {
				blockSchurUpdate(s, ft, 0, ft.Rows)
			} else {
				ParallelRanges(workers, ft.Rows, func(lo, hi int) {
					blockSchurUpdate(s, ft, lo, hi)
				})
			}
		}
		if f.factors[t] == nil {
			f.factors[t] = &Cholesky{}
		}
		if err := f.factors[t].RefactorizeWorkers(s, maxShift, workers); err != nil {
			return fmt.Errorf("linalg: block %d: %w", t, err)
		}
		prev = f.factors[t]
	}
	return nil
}

// blockCouplingSolve fills rows [lo, hi) of F = E·L⁻ᵀ by forward-substituting
// each row of E against the previous block's factor.
func blockCouplingSolve(ft, e *Dense, prev *Cholesky, lo, hi int) {
	for r := lo; r < hi; r++ {
		prev.SolveLower(ft.Row(r), e.Row(r))
	}
}

// blockSchurUpdate applies rows [lo, hi) of S −= F·Fᵀ.
func blockSchurUpdate(s, ft *Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		ri := ft.Row(i)
		srow := s.Row(i)
		for j := 0; j < ft.Rows; j++ {
			srow[j] -= Dot(ri, ft.Row(j))
		}
	}
}

// Solve solves M·x = b, writing into x (which may alias b).
//
//soral:hotpath
func (f *BlockTriChol) Solve(x, b []float64) {
	off := f.offsets
	n := off[len(off)-1]
	if len(x) != n || len(b) != n {
		panic("linalg: BlockTriChol.Solve dimension mismatch")
	}
	if &x[0] != &b[0] {
		copy(x, b)
	}
	T := len(f.factors)
	// Forward: y_t = L_t⁻¹ (b_t − F_t y_{t−1}).
	for t := 0; t < T; t++ {
		xt := x[off[t]:off[t+1]]
		if t > 0 {
			ft := f.offdiag[t-1]
			prev := x[off[t-1]:off[t]]
			tmp := f.scratch[:len(xt)]
			ft.MulVec(tmp, prev)
			SubTo(xt, xt, tmp)
		}
		f.factors[t].SolveLower(xt, xt)
	}
	// Backward: x_t = L_t⁻ᵀ (y_t − F_{t+1}ᵀ x_{t+1}).
	for t := T - 1; t >= 0; t-- {
		xt := x[off[t]:off[t+1]]
		if t < T-1 {
			ft := f.offdiag[t]
			next := x[off[t+1]:off[t+2]]
			tmp := f.scratch[:len(xt)]
			ft.MulVecTrans(tmp, next)
			SubTo(xt, xt, tmp)
		}
		f.factors[t].SolveUpper(xt, xt)
	}
}

// Shift returns the maximum diagonal regularization applied to any block.
func (f *BlockTriChol) Shift() float64 {
	var s float64
	for _, c := range f.factors {
		if c.Shift > s {
			s = c.Shift
		}
	}
	return s
}
