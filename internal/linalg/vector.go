package linalg

import (
	"fmt"
	"math"
)

// Dot returns the inner product of x and y. It panics if the lengths differ.
func Dot(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(x), len(y)))
	}
	var s float64
	for i, v := range x {
		s += v * y[i]
	}
	return s
}

// Axpy computes y += alpha*x in place. It panics if the lengths differ.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic(fmt.Sprintf("linalg: Axpy length mismatch %d vs %d", len(x), len(y)))
	}
	//sorallint:ignore floatcmp exact-zero fast path: alpha = 0 means y is untouched bit-for-bit
	if alpha == 0 {
		return
	}
	for i, v := range x {
		y[i] += alpha * v
	}
}

// Scale multiplies every element of x by alpha in place.
func Scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// Norm2 returns the Euclidean norm of x, guarding against overflow.
func Norm2(x []float64) float64 {
	var scale, ssq float64
	ssq = 1
	for _, v := range x {
		//sorallint:ignore floatcmp exact-zero skip keeps the scaled-ssq update well-defined
		if v == 0 {
			continue
		}
		a := math.Abs(v)
		if scale < a {
			r := scale / a
			ssq = 1 + ssq*r*r
			scale = a
		} else {
			r := a / scale
			ssq += r * r
		}
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the maximum absolute value in x (0 for an empty slice).
func NormInf(x []float64) float64 {
	var m float64
	for _, v := range x {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Norm1 returns the sum of absolute values of x.
func Norm1(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += math.Abs(v)
	}
	return s
}

// Clone returns a fresh copy of x.
func Clone(x []float64) []float64 {
	y := make([]float64, len(x))
	copy(y, x)
	return y
}

// AddTo stores x+y into dst (which may alias either input).
func AddTo(dst, x, y []float64) {
	if len(x) != len(y) || len(dst) != len(x) {
		panic("linalg: AddTo length mismatch")
	}
	for i := range dst {
		dst[i] = x[i] + y[i]
	}
}

// SubTo stores x−y into dst (which may alias either input).
func SubTo(dst, x, y []float64) {
	if len(x) != len(y) || len(dst) != len(x) {
		panic("linalg: SubTo length mismatch")
	}
	for i := range dst {
		dst[i] = x[i] - y[i]
	}
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// MinElem returns the smallest element of x. It panics on an empty slice.
func MinElem(x []float64) float64 {
	if len(x) == 0 {
		panic("linalg: MinElem of empty slice")
	}
	m := x[0]
	for _, v := range x[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// MaxElem returns the largest element of x. It panics on an empty slice.
func MaxElem(x []float64) float64 {
	if len(x) == 0 {
		panic("linalg: MaxElem of empty slice")
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// AllFinite reports whether every element of x is finite (no NaN or ±Inf).
func AllFinite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
