package linalg

import (
	"math/rand"
	"testing"
)

func randMatrix(rng *rand.Rand, r, c int) *Dense {
	m := NewDense(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// randSPD builds a random symmetric positive definite matrix AᵀA + I.
func randSPD(rng *rand.Rand, n int) *Dense {
	a := randMatrix(rng, n, n)
	s := Mul(a.Transpose(), a)
	s.AddDiag(1)
	return s
}

func TestDenseAtSet(t *testing.T) {
	m := NewDense(2, 3)
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 || m.Data[1*3+2] != 7 {
		t.Fatal("At/Set layout wrong")
	}
	m.Add(1, 2, 1)
	if m.At(1, 2) != 8 {
		t.Fatal("Add wrong")
	}
}

func TestMulVecAgainstMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		r, c := 1+rng.Intn(8), 1+rng.Intn(8)
		m := randMatrix(rng, r, c)
		x := randVec(rng, c)
		dst := make([]float64, r)
		m.MulVec(dst, x)
		// Reference via Mul with x as a column matrix.
		xm := NewDenseFrom(c, 1, x)
		ref := Mul(m, xm)
		for i := 0; i < r; i++ {
			if !almostEq(dst[i], ref.At(i, 0), 1e-12) {
				t.Fatalf("MulVec mismatch at %d: %v vs %v", i, dst[i], ref.At(i, 0))
			}
		}
	}
}

func TestMulVecTransAgainstTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		r, c := 1+rng.Intn(8), 1+rng.Intn(8)
		m := randMatrix(rng, r, c)
		x := randVec(rng, r)
		got := make([]float64, c)
		m.MulVecTrans(got, x)
		want := make([]float64, c)
		m.Transpose().MulVec(want, x)
		for i := range got {
			if !almostEq(got[i], want[i], 1e-12) {
				t.Fatalf("MulVecTrans mismatch at %d", i)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randMatrix(rng, 4, 7)
	tt := m.Transpose().Transpose()
	for i := range m.Data {
		if m.Data[i] != tt.Data[i] {
			t.Fatal("transpose not an involution")
		}
	}
}

func TestMulAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randMatrix(rng, 3, 4)
	b := randMatrix(rng, 4, 5)
	c := randMatrix(rng, 5, 2)
	left := Mul(Mul(a, b), c)
	right := Mul(a, Mul(b, c))
	for i := range left.Data {
		if !almostEq(left.Data[i], right.Data[i], 1e-10) {
			t.Fatal("matrix multiplication not associative numerically")
		}
	}
}

func TestEyeIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randMatrix(rng, 4, 4)
	p := Mul(Eye(4), m)
	for i := range m.Data {
		if p.Data[i] != m.Data[i] {
			t.Fatal("Eye is not identity under Mul")
		}
	}
}

func TestAddDiag(t *testing.T) {
	m := NewDense(3, 3)
	m.AddDiag(2.5)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 2.5
			}
			if m.At(i, j) != want {
				t.Fatalf("AddDiag wrong at (%d,%d)", i, j)
			}
		}
	}
}

func TestSymRankKUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randMatrix(rng, 5, 3)
	d := []float64{1, 2, 0, 0.5, 3}
	dst := NewDense(3, 3)
	SymRankKUpdate(dst, a, d)
	// Reference: Aᵀ·diag(d)·A.
	da := a.Clone()
	for r := 0; r < a.Rows; r++ {
		row := da.Row(r)
		for c := range row {
			row[c] *= d[r]
		}
	}
	ref := Mul(a.Transpose(), da)
	for i := range dst.Data {
		if !almostEq(dst.Data[i], ref.Data[i], 1e-12) {
			t.Fatal("SymRankKUpdate mismatch")
		}
	}
	// Symmetry.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !almostEq(dst.At(i, j), dst.At(j, i), 1e-12) {
				t.Fatal("SymRankKUpdate result not symmetric")
			}
		}
	}
}

func TestRowSharesStorage(t *testing.T) {
	m := NewDense(2, 2)
	m.Row(1)[0] = 9
	if m.At(1, 0) != 9 {
		t.Fatal("Row does not share storage")
	}
}

func TestNewDenseFromCopies(t *testing.T) {
	data := []float64{1, 2, 3, 4}
	m := NewDenseFrom(2, 2, data)
	data[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("NewDenseFrom did not copy")
	}
}
