package linalg

import (
	"fmt"
	"math/rand"
	"testing"
)

// testWorkerCounts are deliberately odd/uneven so partitions don't line up
// with the sizes under test; explicit counts above GOMAXPROCS are honored
// (see boundWorkers), so a single-processor machine still runs the real
// multi-goroutine decomposition.
var testWorkerCounts = []int{2, 3, 4, 7}

func TestParallelRangesPartition(t *testing.T) {
	for _, workers := range append([]int{0, 1}, testWorkerCounts...) {
		for _, n := range []int{0, 1, 7, 8, 16, 63, 64, 100} {
			seen := make([]int, n)
			ParallelRanges(workers, n, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("workers=%d n=%d: bad range [%d,%d)", workers, n, lo, hi)
					return
				}
				for i := lo; i < hi; i++ {
					seen[i]++ // each index owned by exactly one range: no race
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestParallelStridedPartition(t *testing.T) {
	for _, workers := range append([]int{0, 1}, testWorkerCounts...) {
		for _, n := range []int{0, 1, 7, 8, 16, 63, 64, 100} {
			seen := make([]int, n)
			ParallelStrided(workers, n, func(start, stride int) {
				for i := start; i < n; i += stride {
					seen[i]++ // strided classes are disjoint: no race
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, c)
				}
			}
		}
	}
}

// bitEqual reports exact bit-level equality, the determinism contract of
// DESIGN.md §8 (almostEq would hide a reassociated reduction).
func bitEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMulWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		m, k, n := 1+rng.Intn(60), 1+rng.Intn(60), 1+rng.Intn(60)
		a, b := randMatrix(rng, m, k), randMatrix(rng, k, n)
		want := MulWorkers(a, b, 1)
		for _, w := range testWorkerCounts {
			got := MulWorkers(a, b, w)
			if !bitEqual(got.Data, want.Data) {
				t.Fatalf("%dx%dx%d workers=%d: parallel Mul diverged from serial", m, k, n, w)
			}
		}
	}
}

func TestSymRankKUpdateWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		m, n := 1+rng.Intn(60), 1+rng.Intn(60)
		a := randMatrix(rng, m, n)
		d := make([]float64, m)
		for i := range d {
			d[i] = rng.Float64() + 0.5
		}
		want := NewDense(n, n)
		SymRankKUpdateWorkers(want, a, d, 1)
		for _, w := range testWorkerCounts {
			got := NewDense(n, n)
			SymRankKUpdateWorkers(got, a, d, w)
			if !bitEqual(got.Data, want.Data) {
				t.Fatalf("%dx%d workers=%d: parallel SymRankKUpdate diverged from serial", m, n, w)
			}
		}
	}
}

// TestCholeskyWorkersBitIdentical pins the two determinism claims of the
// blocked factorization at once: every worker count reproduces the serial
// blocked result bit-for-bit, and the blocked result itself reproduces the
// reference unblocked column algorithm bit-for-bit (sizes straddle
// cholBlockSize so multi-panel paths are exercised).
func TestCholeskyWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, n := range []int{1, 8, cholBlockSize - 1, cholBlockSize, cholBlockSize + 1, 2*cholBlockSize + 5, 150} {
		a := randSPD(rng, n)
		serial, err := NewCholeskyWorkers(a, 0, 1)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		oracle := NewDense(n, n)
		if !tryCholeskyUnblocked(a, oracle, 0) {
			t.Fatalf("n=%d: unblocked oracle failed on SPD input", n)
		}
		for i := 0; i < n; i++ { // compare the lower triangle the oracle fills
			for j := 0; j <= i; j++ {
				if serial.L.At(i, j) != oracle.At(i, j) {
					t.Fatalf("n=%d: blocked L[%d,%d]=%v differs from unblocked %v",
						n, i, j, serial.L.At(i, j), oracle.At(i, j))
				}
			}
		}
		for _, w := range testWorkerCounts {
			par, err := NewCholeskyWorkers(a, 0, w)
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, w, err)
			}
			if !bitEqual(par.L.Data, serial.L.Data) {
				t.Fatalf("n=%d workers=%d: parallel Cholesky diverged from serial", n, w)
			}
		}
	}
}

func TestCholeskyWorkersShiftRetryBitIdentical(t *testing.T) {
	// An indefinite matrix forces the shift-retry loop; the retries must stay
	// deterministic across worker counts too.
	rng := rand.New(rand.NewSource(44))
	n := cholBlockSize + 9
	a := randSPD(rng, n)
	a.AddDiag(-3) // push some pivots negative
	serial := &Cholesky{}
	if err := serial.RefactorizeWorkers(a, 1e6, 1); err != nil {
		t.Fatalf("serial shifted factorization failed: %v", err)
	}
	if serial.Shift == 0 {
		t.Fatalf("test input unexpectedly positive definite; shift retry not exercised")
	}
	for _, w := range testWorkerCounts {
		par := &Cholesky{}
		if err := par.RefactorizeWorkers(a, 1e6, w); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if par.Shift != serial.Shift {
			t.Fatalf("workers=%d: shift %v differs from serial %v", w, par.Shift, serial.Shift)
		}
		if !bitEqual(par.L.Data, serial.L.Data) {
			t.Fatalf("workers=%d: shifted parallel Cholesky diverged from serial", w)
		}
	}
}

func TestBlockTriCholWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	sizes := []int{17, 30, 9, 24, 40}
	m := randBlockTriSPD(rng, sizes)
	serial := &BlockTriChol{}
	if err := serial.RefactorizeWorkers(m, 0, 1); err != nil {
		t.Fatal(err)
	}
	rhs := randVec(rng, m.Dim())
	want := make([]float64, len(rhs))
	serial.Solve(want, rhs)
	for _, w := range testWorkerCounts {
		par := &BlockTriChol{}
		if err := par.RefactorizeWorkers(m, 0, w); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for t2, f := range par.factors {
			if !bitEqual(f.L.Data, serial.factors[t2].L.Data) {
				t.Fatalf("workers=%d: block %d factor diverged from serial", w, t2)
			}
		}
		got := make([]float64, len(rhs))
		par.Solve(got, rhs)
		if !bitEqual(got, want) {
			t.Fatalf("workers=%d: parallel BlockTriChol solve diverged from serial", w)
		}
	}
}

// benchSizes matches the kernels experiment in internal/eval (soralbench
// -exp kernels); keep the two in sync so bench and experiment are comparable.
var benchSizes = []int{64, 256, 1024}

func benchWorkerSettings() []struct {
	name string
	w    int
} {
	settings := []struct {
		name string
		w    int
	}{{"serial", 1}}
	if ResolveWorkers(0) > 1 {
		settings = append(settings, struct {
			name string
			w    int
		}{"gomaxprocs", 0})
	}
	return settings
}

func BenchmarkSymRankKUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(51))
	for _, n := range benchSizes {
		a := randMatrix(rng, n/2, n)
		d := make([]float64, n/2)
		for i := range d {
			d[i] = rng.Float64() + 0.5
		}
		dst := NewDense(n, n)
		for _, s := range benchWorkerSettings() {
			b.Run(fmt.Sprintf("n=%d/%s", n, s.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					dst.Zero()
					SymRankKUpdateWorkers(dst, a, d, s.w)
				}
			})
		}
	}
}

func BenchmarkCholesky(b *testing.B) {
	rng := rand.New(rand.NewSource(52))
	for _, n := range benchSizes {
		a := randSPD(rng, n)
		c := &Cholesky{}
		for _, s := range benchWorkerSettings() {
			b.Run(fmt.Sprintf("n=%d/%s", n, s.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := c.RefactorizeWorkers(a, 0, s.w); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkBlockTriCholFactorize(b *testing.B) {
	rng := rand.New(rand.NewSource(53))
	for _, n := range benchSizes {
		const T = 8
		sizes := make([]int, T)
		for t := range sizes {
			sizes[t] = n / T
		}
		m := randBlockTriSPD(rng, sizes)
		f := &BlockTriChol{}
		for _, s := range benchWorkerSettings() {
			b.Run(fmt.Sprintf("n=%d/%s", n, s.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := f.RefactorizeWorkers(m, 0, s.w); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
