package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned when a Cholesky factorization encounters
// a non-positive pivot that regularization could not repair.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky holds a lower-triangular Cholesky factor L with A = L·Lᵀ.
// A zero Cholesky is a valid factorization workspace: Refactorize fills it,
// reusing the L buffer across calls when the dimension is unchanged.
type Cholesky struct {
	N int
	L *Dense
	// Shift is the diagonal regularization that was actually added to A
	// before factorizing (0 when the matrix was positive definite as given).
	Shift float64

	// invDiag is the per-panel reciprocal-pivot scratch of the blocked
	// factorization, kept so refactorizations allocate nothing.
	invDiag []float64
}

// cholBlockSize is the panel width of the blocked right-looking
// factorization. 48 keeps three panel rows inside L1 while leaving trailing
// updates big enough to split across workers.
const cholBlockSize = 48

// NewCholesky factorizes the symmetric positive definite matrix A (only the
// lower triangle is read). If the factorization hits a non-positive pivot and
// maxShift > 0, it retries with geometrically increasing diagonal shifts up
// to maxShift; the shift that succeeded is recorded in the result.
func NewCholesky(a *Dense, maxShift float64) (*Cholesky, error) {
	return NewCholeskyWorkers(a, maxShift, 1)
}

// NewCholeskyWorkers is NewCholesky with the trailing-submatrix updates of
// the blocked factorization split across `workers` goroutines (≤ 0 means
// GOMAXPROCS). The result is bit-identical for every worker count: every
// element of L is computed by exactly one worker in the serial operation
// order (see DESIGN.md §8).
func NewCholeskyWorkers(a *Dense, maxShift float64, workers int) (*Cholesky, error) {
	c := &Cholesky{}
	if err := c.RefactorizeWorkers(a, maxShift, workers); err != nil {
		return nil, err
	}
	return c, nil
}

// Refactorize factorizes A into the receiver, reusing its L buffer when the
// dimension matches the previous factorization. On error the receiver's
// factor contents are undefined and must not be used for solves.
//
//soral:hotpath
func (c *Cholesky) Refactorize(a *Dense, maxShift float64) error {
	return c.RefactorizeWorkers(a, maxShift, 1)
}

// RefactorizeWorkers is Refactorize on `workers` goroutines.
func (c *Cholesky) RefactorizeWorkers(a *Dense, maxShift float64, workers int) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("linalg: Cholesky on %dx%d matrix", a.Rows, a.Cols)
	}
	if !AllFinite(a.Data) {
		return fmt.Errorf("linalg: Cholesky input has non-finite entries")
	}
	if math.IsInf(maxShift, 1) || math.IsNaN(maxShift) {
		return fmt.Errorf("linalg: invalid maxShift %g", maxShift)
	}
	n := a.Rows
	if c.L == nil || c.L.Rows != n || c.L.Cols != n {
		c.L = NewDense(n, n)
	}
	if len(c.invDiag) < cholBlockSize {
		c.invDiag = make([]float64, cholBlockSize)
	}
	c.N = n
	shift := 0.0
	for attempt := 0; ; attempt++ {
		loadLower(c.L, a, shift)
		if factorLowerBlocked(c.L, c.invDiag, workers) {
			c.Shift = shift
			return nil
		}
		if maxShift <= 0 {
			return ErrNotPositiveDefinite
		}
		if attempt == 0 {
			// Start from a scale-aware tiny shift.
			scale := 0.0
			for i := 0; i < n; i++ {
				if d := math.Abs(a.At(i, i)); d > scale {
					scale = d
				}
			}
			if scale <= 0 {
				scale = 1
			}
			shift = 1e-12 * scale
		} else {
			shift *= 100
		}
		if shift > maxShift {
			return ErrNotPositiveDefinite
		}
	}
}

// loadLower copies A's lower triangle into L (upper triangle zeroed) and adds
// the regularization shift to the diagonal. Adding the shift before any
// update keeps the per-element operation sequence identical to the reference
// column algorithm, which starts each pivot from a(j,j)+shift.
func loadLower(l, a *Dense, shift float64) {
	n := a.Rows
	for i := 0; i < n; i++ {
		lrow, arow := l.Row(i), a.Row(i)
		copy(lrow[:i+1], arow[:i+1])
		for j := i + 1; j < n; j++ {
			lrow[j] = 0
		}
		lrow[i] += shift
	}
}

// factorLowerBlocked runs the blocked right-looking Cholesky factorization
// in place on the lower triangle of l. Per panel [k0,k1): the diagonal block
// is factorized serially, the panel below it is solved in parallel row
// ranges, and the trailing submatrix update — the O(n³) bulk — is split
// across workers with a strided row partition (the trailing rows grow
// linearly in cost, so striding balances the triangle where contiguous
// ranges would load the last worker with half the work).
//
// Every element receives its updates in ascending-k order exactly like the
// reference unblocked column algorithm (tryCholeskyUnblocked), and each
// element is owned by exactly one goroutine, so the factor is bit-identical
// to the serial and to the unblocked result for every worker count.
func factorLowerBlocked(l *Dense, inv []float64, workers int) bool {
	n := l.Rows
	// The serial collapse must not create the parallel branch's closures:
	// they are heap-allocated at their creation site whenever the enclosing
	// function can spawn goroutines, and Refactorize sits inside the solvers'
	// zero-allocation loop (see EffectiveWorkers).
	serial := EffectiveWorkers(workers, n) == 1
	for k0 := 0; k0 < n; k0 += cholBlockSize {
		k1 := k0 + cholBlockSize
		if k1 > n {
			k1 = n
		}
		// Factor the diagonal block in place (at most cholBlockSize², and
		// every later step of this panel depends on it).
		for j := k0; j < k1; j++ {
			lrowj := l.Row(j)
			d := lrowj[j]
			for k := k0; k < j; k++ {
				d -= lrowj[k] * lrowj[k]
			}
			if d <= 0 || math.IsNaN(d) {
				return false
			}
			d = math.Sqrt(d)
			lrowj[j] = d
			inv[j-k0] = 1 / d
			for i := j + 1; i < k1; i++ {
				lrowi := l.Row(i)
				s := lrowi[j]
				for k := k0; k < j; k++ {
					s -= lrowi[k] * lrowj[k]
				}
				lrowi[j] = s * inv[j-k0]
			}
		}
		if k1 == n {
			break
		}
		if serial {
			cholPanelSolve(l, inv, k0, k1, 0, n-k1)
			cholTrailingUpdate(l, k0, k1, n, 0, 1)
			continue
		}
		// Panel solve: rows below the panel against the factored block.
		// Uniform cost per row, so contiguous ranges balance perfectly.
		//sorallint:ignore hotalloc parallel-branch closure, amortized over the O(n²) panel; the serial path above never builds it
		ParallelRanges(workers, n-k1, func(lo, hi int) {
			cholPanelSolve(l, inv, k0, k1, lo, hi)
		})
		// Trailing update: L22 −= L21·L21ᵀ on the lower triangle. The
		// trailing rows grow linearly in cost, so striding balances the
		// triangle where contiguous ranges would load the last worker with
		// half the work.
		//sorallint:ignore hotalloc parallel-branch closure, amortized over the O(n²) trailing triangle; the serial path above never builds it
		ParallelStrided(workers, n-k1, func(start, stride int) {
			cholTrailingUpdate(l, k0, k1, n, start, stride)
		})
	}
	return true
}

// cholPanelSolve solves rows k1+lo .. k1+hi−1 of the panel [k0,k1) against
// its factored diagonal block.
func cholPanelSolve(l *Dense, inv []float64, k0, k1, lo, hi int) {
	for i := k1 + lo; i < k1+hi; i++ {
		lrowi := l.Row(i)
		for j := k0; j < k1; j++ {
			lrowj := l.Row(j)
			s := lrowi[j]
			for k := k0; k < j; k++ {
				s -= lrowi[k] * lrowj[k]
			}
			lrowi[j] = s * inv[j-k0]
		}
	}
}

// cholTrailingUpdate applies L22 −= L21·L21ᵀ to the strided trailing rows
// start, start+stride, … (relative to k1) on the lower triangle.
func cholTrailingUpdate(l *Dense, k0, k1, n, start, stride int) {
	for r := start; r < n-k1; r += stride {
		i := k1 + r
		lrowi := l.Row(i)
		for j := k1; j <= i; j++ {
			lrowj := l.Row(j)
			v := lrowi[j]
			for k := k0; k < k1; k++ {
				v -= lrowi[k] * lrowj[k]
			}
			lrowi[j] = v
		}
	}
}

// tryCholeskyUnblocked is the reference single-pass column Cholesky the
// blocked factorization must reproduce bit-for-bit; the determinism tests
// cross-check factorLowerBlocked against it on randomized inputs.
func tryCholeskyUnblocked(a, l *Dense, shift float64) bool {
	n := a.Rows
	for j := 0; j < n; j++ {
		d := a.At(j, j) + shift
		lrowj := l.Row(j)
		for k := 0; k < j; k++ {
			d -= lrowj[k] * lrowj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return false
		}
		d = math.Sqrt(d)
		lrowj[j] = d
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			lrowi := l.Row(i)
			for k := 0; k < j; k++ {
				s -= lrowi[k] * lrowj[k]
			}
			lrowi[j] = s * inv
		}
	}
	return true
}

// ConditionEstimate returns a cheap lower bound on the 2-norm condition
// number of the factorized matrix: (max L_ii / min L_ii)². The diagonal of
// the Cholesky factor brackets the extreme eigenvalues, so this catches the
// near-singular systems that precede numerical breakdowns without an extra
// O(n³) pass.
func (c *Cholesky) ConditionEstimate() float64 {
	if c.N == 0 {
		return 1
	}
	minD, maxD := math.Inf(1), 0.0
	for i := 0; i < c.N; i++ {
		d := c.L.At(i, i)
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	if minD <= 0 {
		return math.Inf(1)
	}
	r := maxD / minD
	return r * r
}

// Solve solves A·x = b using the factorization, writing the result into x
// (which may alias b).
//
//soral:hotpath
func (c *Cholesky) Solve(x, b []float64) {
	if len(b) != c.N || len(x) != c.N {
		panic("linalg: Cholesky.Solve dimension mismatch")
	}
	if &x[0] != &b[0] {
		copy(x, b)
	}
	c.SolveInPlace(x)
}

// SolveInPlace solves A·x = b where x initially holds b.
func (c *Cholesky) SolveInPlace(x []float64) {
	n := c.N
	l := c.L
	// Forward substitution L·y = b.
	for i := 0; i < n; i++ {
		row := l.Row(i)
		s := x[i]
		for k := 0; k < i; k++ {
			s -= row[k] * x[k]
		}
		//sorallint:ignore divguard L diagonal is positive by construction (tryCholesky rejects non-positive pivots)
		x[i] = s / row[i]
	}
	// Backward substitution Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
}

// SolveLower solves L·y = b (forward substitution only), writing into y.
func (c *Cholesky) SolveLower(y, b []float64) {
	if &y[0] != &b[0] {
		copy(y, b)
	}
	for i := 0; i < c.N; i++ {
		row := c.L.Row(i)
		s := y[i]
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		//sorallint:ignore divguard L diagonal is positive by construction (tryCholesky rejects non-positive pivots)
		y[i] = s / row[i]
	}
}

// SolveUpper solves Lᵀ·x = b (backward substitution only), writing into x.
func (c *Cholesky) SolveUpper(x, b []float64) {
	if &x[0] != &b[0] {
		copy(x, b)
	}
	for i := c.N - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < c.N; k++ {
			s -= c.L.At(k, i) * x[k]
		}
		x[i] = s / c.L.At(i, i)
	}
}
