package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned when a Cholesky factorization encounters
// a non-positive pivot that regularization could not repair.
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky holds a lower-triangular Cholesky factor L with A = L·Lᵀ.
type Cholesky struct {
	N int
	L *Dense
	// Shift is the diagonal regularization that was actually added to A
	// before factorizing (0 when the matrix was positive definite as given).
	Shift float64
}

// NewCholesky factorizes the symmetric positive definite matrix A (only the
// lower triangle is read). If the factorization hits a non-positive pivot and
// maxShift > 0, it retries with geometrically increasing diagonal shifts up
// to maxShift; the shift that succeeded is recorded in the result.
func NewCholesky(a *Dense, maxShift float64) (*Cholesky, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Cholesky on %dx%d matrix", a.Rows, a.Cols)
	}
	if !AllFinite(a.Data) {
		return nil, fmt.Errorf("linalg: Cholesky input has non-finite entries")
	}
	if math.IsInf(maxShift, 1) || math.IsNaN(maxShift) {
		return nil, fmt.Errorf("linalg: invalid maxShift %g", maxShift)
	}
	n := a.Rows
	shift := 0.0
	for attempt := 0; ; attempt++ {
		l := NewDense(n, n)
		ok := tryCholesky(a, l, shift)
		if ok {
			return &Cholesky{N: n, L: l, Shift: shift}, nil
		}
		if maxShift <= 0 {
			return nil, ErrNotPositiveDefinite
		}
		if attempt == 0 {
			// Start from a scale-aware tiny shift.
			scale := 0.0
			for i := 0; i < n; i++ {
				if d := math.Abs(a.At(i, i)); d > scale {
					scale = d
				}
			}
			if scale <= 0 {
				scale = 1
			}
			shift = 1e-12 * scale
		} else {
			shift *= 100
		}
		if shift > maxShift {
			return nil, ErrNotPositiveDefinite
		}
	}
}

func tryCholesky(a, l *Dense, shift float64) bool {
	n := a.Rows
	for j := 0; j < n; j++ {
		d := a.At(j, j) + shift
		lrowj := l.Row(j)
		for k := 0; k < j; k++ {
			d -= lrowj[k] * lrowj[k]
		}
		if d <= 0 || math.IsNaN(d) {
			return false
		}
		d = math.Sqrt(d)
		lrowj[j] = d
		inv := 1 / d
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			lrowi := l.Row(i)
			for k := 0; k < j; k++ {
				s -= lrowi[k] * lrowj[k]
			}
			lrowi[j] = s * inv
		}
	}
	return true
}

// ConditionEstimate returns a cheap lower bound on the 2-norm condition
// number of the factorized matrix: (max L_ii / min L_ii)². The diagonal of
// the Cholesky factor brackets the extreme eigenvalues, so this catches the
// near-singular systems that precede numerical breakdowns without an extra
// O(n³) pass.
func (c *Cholesky) ConditionEstimate() float64 {
	if c.N == 0 {
		return 1
	}
	minD, maxD := math.Inf(1), 0.0
	for i := 0; i < c.N; i++ {
		d := c.L.At(i, i)
		if d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	if minD <= 0 {
		return math.Inf(1)
	}
	r := maxD / minD
	return r * r
}

// Solve solves A·x = b using the factorization, writing the result into x
// (which may alias b).
func (c *Cholesky) Solve(x, b []float64) {
	if len(b) != c.N || len(x) != c.N {
		panic("linalg: Cholesky.Solve dimension mismatch")
	}
	if &x[0] != &b[0] {
		copy(x, b)
	}
	c.SolveInPlace(x)
}

// SolveInPlace solves A·x = b where x initially holds b.
func (c *Cholesky) SolveInPlace(x []float64) {
	n := c.N
	l := c.L
	// Forward substitution L·y = b.
	for i := 0; i < n; i++ {
		row := l.Row(i)
		s := x[i]
		for k := 0; k < i; k++ {
			s -= row[k] * x[k]
		}
		//sorallint:ignore divguard L diagonal is positive by construction (tryCholesky rejects non-positive pivots)
		x[i] = s / row[i]
	}
	// Backward substitution Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
}

// SolveLower solves L·y = b (forward substitution only), writing into y.
func (c *Cholesky) SolveLower(y, b []float64) {
	if &y[0] != &b[0] {
		copy(y, b)
	}
	for i := 0; i < c.N; i++ {
		row := c.L.Row(i)
		s := y[i]
		for k := 0; k < i; k++ {
			s -= row[k] * y[k]
		}
		//sorallint:ignore divguard L diagonal is positive by construction (tryCholesky rejects non-positive pivots)
		y[i] = s / row[i]
	}
}

// SolveUpper solves Lᵀ·x = b (backward substitution only), writing into x.
func (c *Cholesky) SolveUpper(x, b []float64) {
	if &x[0] != &b[0] {
		copy(x, b)
	}
	for i := c.N - 1; i >= 0; i-- {
		s := x[i]
		for k := i + 1; k < c.N; k++ {
			s -= c.L.At(k, i) * x[k]
		}
		x[i] = s / c.L.At(i, i)
	}
}
