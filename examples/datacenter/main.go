// Datacenter: the paper's single-data-center special case (Section III-C,
// equations 4–6). Shows the closed-form online algorithm's signature
// behaviour — follow the workload up, exponential decay down — against a
// flash-crowd workload, and compares costs with greedy and offline.
//
//	go run ./examples/datacenter
package main

import (
	"fmt"
	"log"
	"strings"

	"soral/internal/core"
)

func main() {
	// One data center, capacity 100, reconfiguration price 60, unit price 1.
	lam := []float64{10, 10, 80, 75, 20, 10, 8, 6, 5, 5, 40, 12, 8, 6, 5, 4}
	a := make([]float64, len(lam))
	for i := range a {
		a[i] = 1
	}
	inst := &core.ScalarInstance{C: 100, B: 60, A: a, Lam: lam}

	online, err := inst.RunOnline(1e-2)
	if err != nil {
		log.Fatal(err)
	}
	offline, offCost, err := inst.RunOffline()
	if err != nil {
		log.Fatal(err)
	}
	greedy := inst.RunGreedy()

	fmt.Println("slot  workload   online  offline   (bars: online allocation)")
	for t := range lam {
		bar := strings.Repeat("#", int(online[t]/2+0.5))
		fmt.Printf("%4d  %8.1f  %7.2f  %7.2f   %s\n", t, lam[t], online[t], offline[t], bar)
	}
	fmt.Printf("\ncosts: greedy %.1f | online %.1f | offline %.1f\n",
		inst.Cost(greedy), inst.Cost(online), offCost)
	fmt.Println("note how the online curve decays exponentially after each spike")
	fmt.Println("instead of dropping to the workload like greedy does — that is the")
	fmt.Println("regularizer hedging against the next spike (equation 6).")
}
