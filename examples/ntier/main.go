// N-tier: the Section III-E generalization. Builds a three-tier cloud
// network (edge → metro → core), runs the path-based regularized online
// algorithm against greedy and the offline optimum on a spiky workload, and
// prints how traffic shifts between paths as prices change.
//
//	go run ./examples/ntier
package main

import (
	"fmt"
	"log"

	"soral/internal/convex"
	"soral/internal/lp"
	"soral/internal/ntier"
)

func main() {
	// Tier 1: two edge clouds. Tier 2: two metro clouds. Tier 3: two core
	// clouds. Every adjacent pair is SLA-admissible except edge 1 → metro 0.
	topo := &ntier.Topology{
		Clouds: [][]ntier.CloudSpec{
			{{Cap: 30, Reconf: 10}, {Cap: 30, Reconf: 10}},
			{{Cap: 40, Reconf: 30}, {Cap: 40, Reconf: 30}},
			{{Cap: 60, Reconf: 60}, {Cap: 60, Reconf: 60}},
		},
		Links: []ntier.Link{
			{Tier: 1, From: 0, To: 0, Cap: 30, Price: 0.3, Reconf: 15},
			{Tier: 1, From: 0, To: 1, Cap: 30, Price: 0.5, Reconf: 15},
			{Tier: 1, From: 1, To: 1, Cap: 30, Price: 0.3, Reconf: 15},
			{Tier: 2, From: 0, To: 0, Cap: 40, Price: 0.4, Reconf: 20},
			{Tier: 2, From: 0, To: 1, Cap: 40, Price: 0.6, Reconf: 20},
			{Tier: 2, From: 1, To: 0, Cap: 40, Price: 0.6, Reconf: 20},
			{Tier: 2, From: 1, To: 1, Cap: 40, Price: 0.4, Reconf: 20},
		},
	}
	sys, err := ntier.Compile(topo, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3-tier system: %d paths over %d resources, worst-case ratio %.0f\n\n",
		sys.NumPaths(), sys.NumResources(), sys.CompetitiveRatio(1e-2))

	// A flash crowd at edge 0 while edge 1 stays steady; core cloud 1 gets
	// cheaper halfway through.
	lam0 := []float64{4, 4, 20, 18, 6, 4, 4, 15, 4, 4}
	lam1 := []float64{6, 6, 6, 6, 6, 6, 6, 6, 6, 6}
	T := len(lam0)
	in := &ntier.Inputs{T: T, PriceCloud: make([][][]float64, T), Workload: make([][]float64, T)}
	for t := 0; t < T; t++ {
		corePrice0, corePrice1 := 1.0, 1.4
		if t >= T/2 {
			corePrice1 = 0.7 // price drop at the second core cloud
		}
		in.PriceCloud[t] = [][]float64{
			{0.2, 0.2},
			{0.5, 0.5},
			{corePrice0, corePrice1},
		}
		in.Workload[t] = []float64{lam0[t], lam1[t]}
	}

	online, err := ntier.RunOnline(sys, in, ntier.Params{Eps: 1e-2}, convex.Options{})
	if err != nil {
		log.Fatal(err)
	}
	greedy, err := ntier.RunGreedy(sys, in, lp.Options{})
	if err != nil {
		log.Fatal(err)
	}
	offline, offObj, err := ntier.RunOffline(sys, in, lp.Options{})
	if err != nil {
		log.Fatal(err)
	}

	core0 := sys.CloudResource(3, 0)
	core1 := sys.CloudResource(3, 1)
	fmt.Println("slot  λ(edge0)  core0(online)  core1(online)  core total offline")
	for t := 0; t < T; t++ {
		g := online[t].ResourceTotals(sys)
		goff := offline[t].ResourceTotals(sys)
		fmt.Printf("%4d  %8.1f  %13.2f  %13.2f  %18.2f\n",
			t, lam0[t], g[core0], g[core1], goff[core0]+goff[core1])
	}
	fmt.Printf("\ncosts: greedy %.1f | online %.1f | offline %.1f\n",
		sys.SequenceCost(in, greedy), sys.SequenceCost(in, online), offObj)
	fmt.Println("the online algorithm decays capacity after the flash crowd and")
	fmt.Println("migrates load toward core cloud 1 once its price drops.")
}
