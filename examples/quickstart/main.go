// Quickstart: build a tiny two-tier cloud network by hand, feed it a bursty
// workload, and compare the paper's regularized online algorithm against the
// greedy one-shot baseline and the offline optimum.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"soral/internal/control"
	"soral/internal/core"
	"soral/internal/model"
)

func main() {
	// Two tier-2 clouds, three edge (tier-1) clouds. Edge clouds 0 and 1 may
	// use either tier-2 cloud (k = 2); edge cloud 2 is locked to cloud 1.
	pairs := []model.Pair{
		{I: 0, J: 0}, {I: 1, J: 0},
		{I: 0, J: 1}, {I: 1, J: 1},
		{I: 1, J: 2},
	}
	net, err := model.NewNetwork(
		2, 3, pairs,
		[]float64{30, 30},                  // tier-2 capacities C_i
		[]float64{50, 50},                  // tier-2 reconfiguration prices b_i
		[]float64{20, 20, 20, 20, 20},      // network capacities B_ij
		[]float64{0.5, 1.0, 1.0, 0.5, 0.7}, // network prices c_ij
		[]float64{25, 25, 25, 25, 25},      // network reconfiguration prices d_ij
	)
	if err != nil {
		log.Fatal(err)
	}

	// A flash crowd: calm, spike, decay — the regime where smoothing pays.
	lams := []float64{2, 2, 9, 9, 3, 2, 2, 8, 2, 2}
	in := &model.Inputs{
		T:        len(lams),
		PriceT2:  make([][]float64, len(lams)),
		Workload: make([][]float64, len(lams)),
	}
	for t, lam := range lams {
		in.PriceT2[t] = []float64{1.0, 1.2}
		in.Workload[t] = []float64{lam, lam * 0.8, lam * 0.5}
	}

	cfg := &control.Config{Net: net, In: in, CoreOpts: core.DefaultOptions()}
	acct := &model.Accountant{Net: net, In: in}

	greedy, err := control.Greedy(cfg)
	if err != nil {
		log.Fatal(err)
	}
	online, err := control.Online(cfg)
	if err != nil {
		log.Fatal(err)
	}
	offline, offObj, err := control.Offline(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("slot  workload  greedy(Σx)  online(Σx)  offline(Σx)")
	for t := range lams {
		sum := func(d *model.Decision) float64 {
			return d.GroupSumT2(net, 0) + d.GroupSumT2(net, 1)
		}
		fmt.Printf("%4d  %8.1f  %10.2f  %10.2f  %11.2f\n",
			t, lams[t], sum(greedy[t]), sum(online[t]), sum(offline[t]))
	}
	if offObj <= 0 {
		log.Fatalf("degenerate offline optimum %g; cost ratios would be meaningless", offObj)
	}
	gc := acct.SequenceCost(greedy, nil).Total()
	oc := acct.SequenceCost(online, nil).Total()
	fmt.Printf("\ntotal cost: greedy %.1f | online %.1f | offline optimum %.1f\n", gc, oc, offObj)
	fmt.Printf("online is within %.2fx of the offline optimum (worst-case bound: %.0fx)\n",
		oc/offObj, core.CompetitiveRatio(net, core.DefaultParams()))
}
