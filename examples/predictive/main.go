// Predictive: standard vs regularized predictive control (Section IV).
// Runs FHC/RHC and the paper's RFHC/RRHC over a Wikipedia-like workload
// with accurate and with noisy predictions, reproducing the trends of
// Figs. 8–10: the regularized controllers beat the standard ones and are
// robust to prediction error.
//
//	go run ./examples/predictive
package main

import (
	"fmt"
	"log"

	"soral/internal/eval"
)

func main() {
	scen, err := eval.Build(eval.ScenarioSpec{
		NumTier2: 3, NumTier1: 6, K: 1, T: 72,
		Trace: eval.TraceWikipedia, ReconfWeight: 1000, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	suite := eval.NewSuite(scen, 1e-3)

	offline, err := suite.Offline()
	if err != nil {
		log.Fatal(err)
	}
	offC := offline.Cost.Total()
	if offC <= 0 {
		log.Fatalf("degenerate offline optimum %g; cost ratios would be meaningless", offC)
	}
	online, err := suite.Online()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("offline optimum: %.1f; prediction-free online: %.3fx offline\n\n",
		offC, online.Cost.Total()/offC)

	for _, errRate := range []float64{0, 0.15} {
		label := "accurate predictions"
		if errRate > 0 {
			label = fmt.Sprintf("%.0f%% prediction error", errRate*100)
		}
		fmt.Printf("window w=4, %s (cost / offline):\n", label)
		for _, alg := range []string{"fhc", "rhc", "rfhc", "rrhc"} {
			run, err := suite.Predictive(alg, 4, errRate, 42)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-5s %.3f\n", run.Algorithm, run.Cost.Total()/offC)
		}
		fmt.Println()
	}
	fmt.Println("RFHC/RRHC inherit the online algorithm's worst-case guarantee")
	fmt.Println("(Theorem 4) while using the same predictions as FHC/RHC.")
}
