// Multitier: the full evaluation pipeline at a reduced scale — AT&T-style
// tier-2 metros, state-capital tier-1 clouds, distance-based SLAs, synthetic
// electricity and bandwidth prices, and a Wikipedia-like workload. Compares
// the online algorithm with greedy and offline across SLA breadths k,
// reproducing the trend of the paper's Fig. 7.
//
//	go run ./examples/multitier
package main

import (
	"fmt"
	"log"
	"os"

	"soral/internal/eval"
)

func main() {
	fmt.Println("k   one-shot  online  offline   (total cost, thousands)")
	for k := 1; k <= 3; k++ {
		scen, err := eval.Build(eval.ScenarioSpec{
			NumTier2: 4, NumTier1: 8, K: k, T: 72,
			Trace: eval.TraceWikipedia, ReconfWeight: 1000, Seed: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		suite := eval.NewSuite(scen, 1e-2)
		greedy, err := suite.Greedy()
		if err != nil {
			log.Fatal(err)
		}
		online, err := suite.Online()
		if err != nil {
			log.Fatal(err)
		}
		offline, err := suite.Offline()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%d   %8.1f  %6.1f  %7.1f\n",
			k, greedy.Cost.Total()/1e3, online.Cost.Total()/1e3, offline.Cost.Total()/1e3)
	}
	fmt.Println("\nwith broader SLAs (larger k) the online algorithm has more freedom")
	fmt.Println("to route around expensive clouds and closes in on the offline optimum.")

	// Show where the money goes for the online run at k = 2.
	scen, err := eval.Build(eval.ScenarioSpec{
		NumTier2: 4, NumTier1: 8, K: 2, T: 72,
		Trace: eval.TraceWikipedia, ReconfWeight: 1000, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	run, err := eval.NewSuite(scen, 1e-2).Online()
	if err != nil {
		log.Fatal(err)
	}
	c := run.Cost
	fmt.Printf("\nonline cost breakdown at k=2: tier-2 alloc %.1f | net alloc %.1f | tier-2 reconf %.1f | net reconf %.1f\n",
		c.AllocT2, c.AllocNet, c.ReconfT2, c.ReconfNet)
	_ = os.Stdout
}
