package soral_test

import (
	"fmt"

	"soral"
	"soral/internal/core"
)

// ExampleRunOnline shows the minimal end-to-end use of the library: build a
// network, describe the time-varying inputs, run the online algorithm, and
// account the cost.
func ExampleRunOnline() {
	net, err := soral.NewNetwork(1, 1,
		[]soral.Pair{{I: 0, J: 0}},
		[]float64{100}, // C_i
		[]float64{50},  // b_i
		[]float64{100}, // B_ij
		[]float64{0},   // c_ij
		[]float64{0})   // d_ij
	if err != nil {
		panic(err)
	}
	in := &soral.Inputs{
		T:        3,
		PriceT2:  [][]float64{{1}, {1}, {1}},
		Workload: [][]float64{{80}, {10}, {60}},
	}
	seq, err := soral.RunOnline(net, in, soral.DefaultOptions())
	if err != nil {
		panic(err)
	}
	acct := &soral.Accountant{Net: net, In: in}
	cost := acct.SequenceCost(seq, nil)
	// The flash crowd at t=0 is covered exactly; at t=1 the allocation
	// decays instead of dropping to 10, hedging against the next spike.
	fmt.Printf("covered t0: %v\n", seq[0].X[0] >= 80-1e-3)
	fmt.Printf("smoothed t1: %v\n", seq[1].X[0] > 10)
	fmt.Printf("cost > 0: %v\n", cost.Total() > 0)
	// Output:
	// covered t0: true
	// smoothed t1: true
	// cost > 0: true
}

// ExampleScalarInstance demonstrates the closed-form scalar special case of
// Section III-C: the exponential-decay recursion of equation (6).
func ExampleScalarInstance() {
	s := &core.ScalarInstance{
		C:   10,
		B:   40,
		A:   []float64{2, 2, 2},
		Lam: []float64{6, 0, 0},
	}
	x, err := s.RunOnline(1e-2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("follows the spike: x0 = %.0f\n", x[0])
	fmt.Printf("monotone decay afterwards: %v\n", x[1] > x[2] && x[0] > x[1])
	// Output:
	// follows the spike: x0 = 6
	// monotone decay afterwards: true
}

// ExampleCompetitiveRatio evaluates Theorem 1's worst-case guarantee for a
// given network and regularization parameter.
func ExampleCompetitiveRatio() {
	net, _ := soral.NewNetwork(1, 1,
		[]soral.Pair{{I: 0, J: 0}},
		[]float64{1}, []float64{1}, []float64{1}, []float64{1}, []float64{1})
	r1 := soral.CompetitiveRatio(net, soral.Params{EpsT2: 0.01, EpsNet: 0.01})
	r2 := soral.CompetitiveRatio(net, soral.Params{EpsT2: 1, EpsNet: 1})
	fmt.Printf("larger ε, smaller guarantee: %v\n", r2 < r1)
	// Output:
	// larger ε, smaller guarantee: true
}
