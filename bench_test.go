// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section V), plus solver micro-benchmarks and the ablations
// called out in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// Figure benchmarks execute the same eval-package experiments that
// cmd/soralbench exposes, at the small scale so a full sweep stays in the
// seconds range; pass -scale through cmd/soralbench for larger runs. The
// regenerated rows are attached to the benchmark output via b.Log at -v.
package soral_test

import (
	"math/rand"
	"strings"
	"testing"

	"soral/internal/admm"
	"soral/internal/control"
	"soral/internal/core"
	"soral/internal/eval"
	"soral/internal/linalg"
	"soral/internal/lp"
	"soral/internal/model"
	"soral/internal/staircase"
	"soral/internal/workload"
)

// logTable renders an experiment's rows into the benchmark log.
func logTable(b *testing.B, tbl *eval.Table) {
	b.Helper()
	var sb strings.Builder
	if err := eval.Render(&sb, tbl); err != nil {
		b.Fatal(err)
	}
	b.Log("\n" + sb.String())
}

// ---- One benchmark per table / figure ----

func BenchmarkTable1Electricity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := eval.Table1()
		if len(tbl.Rows) != 18 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkTable2Bandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl := eval.Table2()
		if len(tbl.Rows) != 5 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig4Workloads(b *testing.B) {
	var tbl *eval.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = eval.Fig4(eval.ScaleSmall, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, tbl)
}

func BenchmarkFig5NoPrediction(b *testing.B) {
	var tbl *eval.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = eval.Fig5(eval.ScaleSmall, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, tbl)
}

func BenchmarkFig6EpsilonSweep(b *testing.B) {
	var tbl *eval.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = eval.Fig6(eval.ScaleSmall, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, tbl)
}

func BenchmarkFig7SLASweep(b *testing.B) {
	var tbl *eval.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = eval.Fig7(eval.ScaleSmall, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, tbl)
}

func BenchmarkFig8AccuratePrediction(b *testing.B) {
	var tbl *eval.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = eval.Fig8(eval.ScaleSmall, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, tbl)
}

func BenchmarkFig9NoisyPrediction(b *testing.B) {
	var tbl *eval.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = eval.Fig9(eval.ScaleSmall, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, tbl)
}

func BenchmarkFig10ErrorSweep(b *testing.B) {
	var tbl *eval.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = eval.Fig10(eval.ScaleSmall, nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, tbl)
}

func BenchmarkAdversarialVShape(b *testing.B) {
	var tbl *eval.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = eval.AdversarialVShape()
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, tbl)
}

// ---- Core algorithm micro-benchmarks ----

func benchScenario(b *testing.B, reconf float64, T int) (*model.Network, *model.Inputs) {
	b.Helper()
	scen, err := eval.Build(eval.ScenarioSpec{
		NumTier2: 3, NumTier1: 6, K: 2, T: T,
		Trace: eval.TraceWikipedia, ReconfWeight: reconf, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return scen.Net, scen.In
}

func BenchmarkOnlineSlot(b *testing.B) {
	n, in := benchScenario(b, 1000, 8)
	prev := model.NewZeroDecision(n)
	opts := core.DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := core.SolveP2(n, in, i%in.T, prev, opts)
		if err != nil {
			b.Fatal(err)
		}
		prev = d
	}
}

func BenchmarkGreedySlot(b *testing.B) {
	n, in := benchScenario(b, 1000, 8)
	cfg := &control.Config{Net: n, In: in, CoreOpts: core.DefaultOptions()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := control.Greedy(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScalarOnlineClosedForm(b *testing.B) {
	lam := workload.Wikipedia(500, 1)
	a := make([]float64, len(lam))
	for i := range a {
		a[i] = 1
	}
	s := &core.ScalarInstance{C: 2, B: 100, A: a, Lam: lam}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.RunOnline(1e-2); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablation: offline solver backends (dense vs staircase vs ADMM) ----

func BenchmarkOfflineDenseBackend(b *testing.B) {
	n, in := benchScenario(b, 1000, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := model.BuildP1(n, in, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := lp.Solve(l.Prob, lp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOfflineStaircaseBackend(b *testing.B) {
	n, in := benchScenario(b, 1000, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := model.BuildP1(n, in, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := staircase.Solve(l.Prob, l.SlotOfCons, l.SlotOfVar, l.W, lp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOfflineStaircaseLongHorizon(b *testing.B) {
	n, in := benchScenario(b, 1000, 96)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := model.BuildP1(n, in, nil, nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := staircase.Solve(l.Prob, l.SlotOfCons, l.SlotOfVar, l.W, lp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOfflineADMM(b *testing.B) {
	// A deliberately small budget: ADMM is the cross-check/fallback path,
	// benchmarked here for the DESIGN.md ablation, not a production route.
	n, in := benchScenario(b, 100, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := admm.SolveOffline(n, in, admm.Options{MaxIter: 40, Tol: 1e-3}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Numerical kernel micro-benchmarks ----

func BenchmarkCholesky128(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const n = 128
	a := linalg.NewDense(n, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	spd := linalg.Mul(a.Transpose(), a)
	spd.AddDiag(float64(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linalg.NewCholesky(spd, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBlockTriCholChain(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	sizes := make([]int, 64)
	for i := range sizes {
		sizes[i] = 16
	}
	m := linalg.NewBlockTriDiag(sizes)
	for t, sz := range sizes {
		d := linalg.NewDense(sz, sz)
		for i := range d.Data {
			d.Data[i] = rng.NormFloat64()
		}
		spd := linalg.Mul(d.Transpose(), d)
		spd.AddDiag(float64(sz) * 20)
		m.Diag[t] = spd
		if t > 0 {
			e := linalg.NewDense(sz, sizes[t-1])
			for i := range e.Data {
				e.Data[i] = 0.3 * rng.NormFloat64()
			}
			m.Sub[t-1] = e
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linalg.NewBlockTriChol(m, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMehrotraChainLP(b *testing.B) {
	// The chain covering LP from the solver tests, n = 200.
	const n = 200
	p := lp.NewProblem(n)
	for i := range p.C {
		p.C[i] = 1
	}
	for i := 0; i+1 < n; i++ {
		p.AddConstraint([]lp.Entry{{Index: i, Val: 1}, {Index: i + 1, Val: 1}}, lp.GE, 1, "")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := lp.Solve(p, lp.Options{})
		if err != nil || sol.Status != lp.Optimal {
			b.Fatalf("%v %v", sol, err)
		}
	}
}

func BenchmarkWorkloadGenerators(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = workload.Wikipedia(workload.WikipediaHours, int64(i))
		_ = workload.WorldCup(workload.WorldCupHours, int64(i))
	}
}
