GO ?= go

.PHONY: build test vet lint race obs-race kernels-race check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet -all ./...

# Project-specific invariants (float comparisons, division guards, map-order
# determinism, context plumbing, telemetry nil-safety, dropped kernel
# errors). Exits nonzero on any finding; see DESIGN.md §7.
lint:
	$(GO) run ./cmd/sorallint ./...

# -shuffle=on randomizes test order so accidental inter-test coupling (the
# dynamic cousin of the maporder lint) fails loudly instead of silently.
race:
	$(GO) test -race -shuffle=on ./...

# The telemetry layer is hammered from many goroutines (ADMM workers, LCP-M
# prefix solves); its registry/sink stress tests run under the race detector
# with a higher count to shake out interleavings the full-suite pass misses.
obs-race:
	$(GO) test -race -count=2 ./internal/obs/...

# The parallel structured kernels and their callers (linalg worker pools,
# lp workspaces, staircase block assembly, AFHC phase fan-out) run twice
# under the race detector: the determinism tests in these packages spawn
# goroutine counts above GOMAXPROCS, which is where partition bugs surface.
kernels-race:
	$(GO) test -race -shuffle=on -count=2 ./internal/linalg/... ./internal/lp/... ./internal/staircase/... ./internal/control/...

# The gate used before merging: static checks (vet plus the sorallint
# invariants) and the full suite under the race detector (the ADMM consensus
# loop and the fault-injection trip counter are the concurrency-sensitive
# paths), plus the focused telemetry and parallel-kernel race passes.
check: vet lint race obs-race kernels-race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
