GO ?= go

.PHONY: build test vet race check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The gate used before merging: static checks plus the full suite under the
# race detector (the ADMM consensus loop and the fault-injection trip counter
# are the concurrency-sensitive paths).
check: vet race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
