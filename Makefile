GO ?= go

.PHONY: build test vet race obs-race check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# The telemetry layer is hammered from many goroutines (ADMM workers, LCP-M
# prefix solves); its registry/sink stress tests run under the race detector
# with a higher count to shake out interleavings the full-suite pass misses.
obs-race:
	$(GO) test -race -count=2 ./internal/obs/...

# The gate used before merging: static checks plus the full suite under the
# race detector (the ADMM consensus loop and the fault-injection trip counter
# are the concurrency-sensitive paths), plus the focused telemetry race pass.
check: vet race obs-race

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...
