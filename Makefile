GO ?= go

.PHONY: build test vet lint lint-self race obs-race obs-serve kernels-race chaos latency warmstart watch check bench bench-compare

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet -all ./...

# Project-specific invariants: the intraprocedural checks (float
# comparisons, division guards, map-order determinism, context plumbing,
# telemetry nil-safety, dropped kernel errors; DESIGN.md §7) plus the
# interprocedural call-graph analyzers (hot-path allocation, lock
# discipline, goroutine leaks, determinism taint; DESIGN.md §12).
# -strict-suppress turns stale //sorallint:ignore directives into errors so
# suppressions cannot outlive the findings they justified.
lint:
	$(GO) run ./cmd/sorallint -strict-suppress ./...

# The linter linting itself: the analysis package is ordinary module code,
# so the same invariants apply to it (and the run doubles as a smoke test
# that the call-graph engine handles its own AST-heavy, closure-dense code).
lint-self:
	$(GO) run ./cmd/sorallint -strict-suppress ./internal/analysis/... ./cmd/sorallint

# -shuffle=on randomizes test order so accidental inter-test coupling (the
# dynamic cousin of the maporder lint) fails loudly instead of silently.
race:
	$(GO) test -race -shuffle=on ./...

# The telemetry layer is hammered from many goroutines (ADMM workers, LCP-M
# prefix solves); its registry/sink stress tests run under the race detector
# with a higher count to shake out interleavings the full-suite pass misses.
obs-race:
	$(GO) test -race -count=2 ./internal/obs/...

# The flight-recorder surfaces: the journal sink is written from the solve
# path while the /runs feed streams it to subscribers, and replay re-runs a
# recorded config concurrently with validation. Shuffled double runs under
# the race detector cover the serve handlers, the feed's drop-oldest ring,
# and the record/replay round trip.
obs-serve:
	$(GO) test -race -shuffle=on -count=2 ./internal/obs/... ./internal/resilience/... ./internal/eval/...

# The parallel structured kernels and their callers (linalg worker pools,
# lp workspaces, staircase block assembly, AFHC phase fan-out) run twice
# under the race detector: the determinism tests in these packages spawn
# goroutine counts above GOMAXPROCS, which is where partition bugs surface.
kernels-race:
	$(GO) test -race -shuffle=on -count=2 ./internal/linalg/... ./internal/lp/... ./internal/staircase/... ./internal/control/...

# The chaos harness drives the seeded crash/recovery fault schedules
# (process kills, torn writes, transient solver faults) and asserts every
# recovery path is bit-identical to the uninterrupted run; it runs under the
# race detector because recovery interleaves the resume solve loop with the
# journal writer and the supervisor's retry bookkeeping. See DESIGN.md §10.
chaos:
	$(GO) run -race ./cmd/soralbench -exp chaos

# The latency experiment drives the span → log-bucketed-histogram → report
# pipeline end to end (assemble/factorize/solve/commit phases over repeated
# online runs) under the race detector: the histograms are recorded from the
# solver's worker goroutines while the slot loop reads counters, which is
# exactly the interleaving the atomic record path must survive.
latency:
	$(GO) run -race ./cmd/soralbench -exp latency -q

# The warm-start experiment enforces the incremental re-solve contracts end
# to end: WarmStart-off runs bit-identical to the baseline, warm steady-state
# slots ≥5× faster at p50 with strictly fewer IPM iterations, and the
# digest-keyed decision cache engaging on repeated inputs. It runs under the
# race detector because the warm path threads SolveState through the same
# solver goroutines the latency experiment exercises. See DESIGN.md §13.
warmstart:
	$(GO) run -race ./cmd/soralbench -exp warmstart -q

# The watchdog experiment drives the self-monitoring stack end to end under
# the race detector: seeded fault traces (a latency spike for the SLO
# burn-rate detector, an adversarial thrashing trace for the
# competitive-ratio detector) must fire and journal reproducibly while the
# tsdb record path stays allocation-free and the sampler tick inside 1% of
# the slot p50. The race detector matters because the store's seqlock-style
# Series ring is written by the sampler goroutine while queries read it, and
# the engine's Status is served concurrently with Eval. See DESIGN.md §14.
watch:
	$(GO) run -race ./cmd/soralbench -exp watch -q

# The gate used before merging: static checks (vet plus the sorallint
# invariants) and the full suite under the race detector (the ADMM consensus
# loop and the fault-injection trip counter are the concurrency-sensitive
# paths), plus the focused telemetry and parallel-kernel race passes and the
# crash/recovery chaos schedules.
check: vet lint lint-self race obs-race obs-serve kernels-race chaos latency warmstart watch

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# Smoke test for the regression differ: a snapshot compared against itself
# must report zero regressions and exit 0. Catches schema drift between the
# bench writers and the compare loader before a real baseline comparison
# depends on them.
bench-compare:
	$(GO) run ./cmd/soralbench -compare results/BENCH_kernels.json results/BENCH_kernels.json
	$(GO) run ./cmd/soralbench -compare results/BENCH_chaos.json results/BENCH_chaos.json
	$(GO) run ./cmd/soralbench -compare results/BENCH_latency.json results/BENCH_latency.json
	$(GO) run ./cmd/soralbench -compare results/BENCH_lint.json results/BENCH_lint.json
	$(GO) run ./cmd/soralbench -compare results/BENCH_warmstart.json results/BENCH_warmstart.json
	$(GO) run ./cmd/soralbench -compare results/BENCH_watch.json results/BENCH_watch.json
